// Package minicorpus bundles small configuration-handling snippets from the
// 11 projects of the paper's Table 1 that are not full simulation targets
// (Redis, ntpd, CVS, Hypertable, MongoDB, AOLServer, Subversion, lighttpd,
// Nginx, OpenSSH, Postfix). Together with the seven simulated systems they
// reproduce the 18-project parameter-to-variable mapping survey: every
// project uses the structure, comparison, or container convention (or a
// hybrid). Survey runs the extraction toolkits over every snippet on the
// engine worker pool and folds the measured conventions back in project
// order.
package minicorpus

import (
	"context"
	"fmt"

	"spex/internal/annot"
	"spex/internal/engine"
	"spex/internal/frontend"
	"spex/internal/mapping"
)

// Project is one surveyed project: a corpus snippet plus its mapping
// annotation.
type Project struct {
	Name        string
	Description string
	Sources     map[string]string
	Annotations string
	// WantConvention is the convention Table 1 reports for the project.
	WantConvention string
}

// SurveyResult is one project's measured extraction outcome.
type SurveyResult struct {
	Project Project
	// Pairs is the number of parameter-to-variable mapping pairs the
	// toolkits extracted.
	Pairs int
	// Convention is the mapping convention measured from the project's
	// annotations — the value Table 1 renders (WantConvention is the
	// paper's published answer it is checked against).
	Convention string
}

// Survey runs the 11-project mapping survey through the engine worker
// pool, workers wide (0 = one per CPU): every project's corpus is
// parsed (frontend.Parse) and its mapping pairs extracted
// (mapping.Extract) concurrently, and the results fold back
// deterministically in Projects() order — the parallel survey renders
// the exact Table 1 rows the sequential loop did. Any project failing
// to parse or extract fails the survey.
func Survey(ctx context.Context, workers int) ([]SurveyResult, error) {
	projects := Projects()
	results, cancelErr := engine.Run(ctx, len(projects), func(_ context.Context, i int) (SurveyResult, error) {
		p := projects[i]
		proj, err := frontend.Parse(p.Name, p.Sources)
		if err != nil {
			return SurveyResult{}, fmt.Errorf("minicorpus: %s: %w", p.Name, err)
		}
		af, err := annot.Parse(p.Annotations)
		if err != nil {
			return SurveyResult{}, fmt.Errorf("minicorpus: %s: %w", p.Name, err)
		}
		pairs, err := mapping.Extract(proj, af)
		if err != nil {
			return SurveyResult{}, fmt.Errorf("minicorpus: %s: %w", p.Name, err)
		}
		return SurveyResult{Project: p, Pairs: len(pairs), Convention: mapping.Convention(af)}, nil
	}, engine.Options[SurveyResult]{Workers: workers})
	if cancelErr != nil {
		return nil, cancelErr
	}
	if err := engine.FirstError(results); err != nil {
		return nil, err
	}
	out, _ := engine.Values(results)
	return out, nil
}

// Projects returns the 11 surveyed snippets.
func Projects() []Project {
	return []Project{
		{
			Name: "Redis", Description: "in-memory data store",
			WantConvention: "comparison",
			Sources:        map[string]string{"config.go": redisSrc},
			Annotations: `{ @PARSER = loadServerConfig
  @PAR = $argv[0]  @VAR = $argv[1] }`,
		},
		{
			Name: "ntpd", Description: "network time daemon",
			WantConvention: "comparison",
			Sources:        map[string]string{"config.go": ntpdSrc},
			Annotations: `{ @PARSER = applyNtpKeyword
  @PAR = $keyword  @VAR = $arg }`,
		},
		{
			Name: "CVS", Description: "version control system",
			WantConvention: "comparison",
			Sources:        map[string]string{"config.go": cvsSrc},
			Annotations: `{ @PARSER = parseCvsrootOption
  @PAR = $opt  @VAR = $val }`,
		},
		{
			Name: "Hypertable", Description: "distributed database",
			WantConvention: "container",
			Sources:        map[string]string{"config.go": hypertableSrc},
			Annotations: `{ @GETTER = getI32
  @PAR = 1  @VAR = $RET }`,
		},
		{
			Name: "MongoDB", Description: "document database",
			WantConvention: "container",
			Sources:        map[string]string{"config.go": mongoSrc},
			Annotations: `{ @GETTER = getParam
  @PAR = 1  @VAR = $RET }`,
		},
		{
			Name: "AOLServer", Description: "web server",
			WantConvention: "container",
			Sources:        map[string]string{"config.go": aolserverSrc},
			Annotations: `{ @GETTER = configIntRange
  @PAR = 2  @VAR = $RET }`,
		},
		{
			Name: "Subversion", Description: "version control system",
			WantConvention: "container",
			Sources:        map[string]string{"config.go": svnSrc},
			Annotations: `{ @GETTER = svnConfigGet
  @PAR = 2  @VAR = $RET }`,
		},
		{
			Name: "lighttpd", Description: "web server",
			WantConvention: "structure",
			Sources:        map[string]string{"config.go": lighttpdSrc},
			Annotations: `{ @STRUCT = configValues
  @PAR = [configValue, 1]  @VAR = [configValue, 2] }`,
		},
		{
			Name: "Nginx", Description: "web server",
			WantConvention: "structure",
			Sources:        map[string]string{"config.go": nginxSrc},
			Annotations: `{ @STRUCT = coreCommands
  @PAR = [ngxCommand, 1]  @VAR = ([ngxCommand, 2], $value) }`,
		},
		{
			Name: "OpenSSH", Description: "SSH daemon",
			WantConvention: "structure",
			Sources:        map[string]string{"config.go": opensshSrc},
			Annotations: `{ @STRUCT = sshdOptions
  @PAR = [sshOption, 1]  @VAR = [sshOption, 2] }`,
		},
		{
			Name: "Postfix", Description: "mail server",
			WantConvention: "structure",
			Sources:        map[string]string{"config.go": postfixSrc},
			Annotations: `{ @STRUCT = intTable
  @PAR = [intParam, 1]  @VAR = [intParam, 2] }`,
		},
	}
}

const redisSrc = `package redis

type serverConf struct {
	maxidletime int64
	port        int64
	logfile     string
}

var server = &serverConf{}

func atoi(s string) int64 { return 0 }

func loadServerConfig(argv []string) {
	if argv[0] == "timeout" {
		server.maxidletime = atoi(argv[1])
	} else if argv[0] == "port" {
		server.port = atoi(argv[1])
	} else if argv[0] == "logfile" {
		server.logfile = argv[1]
	}
}
`

const ntpdSrc = `package ntpd

type ntpConf struct {
	driftfile string
	tos       int64
}

var nconf = &ntpConf{}

func atoi(s string) int64 { return 0 }

func applyNtpKeyword(keyword string, arg string) {
	if keyword == "driftfile" {
		nconf.driftfile = arg
	} else if keyword == "tos" {
		nconf.tos = atoi(arg)
	}
}
`

const cvsSrc = `package cvs

type cvsConf struct {
	lockDir    string
	historyLog bool
}

var cconf = &cvsConf{}

func parseCvsrootOption(opt string, val string) {
	if opt == "LockDir" {
		cconf.lockDir = val
	} else if opt == "LogHistory" {
		if val == "all" {
			cconf.historyLog = true
		} else {
			cconf.historyLog = false
		}
	}
}
`

const hypertableSrc = `package hypertable

type props struct{}

func (p *props) getI32(name string) int64 { return 0 }

type master struct {
	retryInterval int64
	port          int64
}

var ctx = &props{}
var m = &master{}

func initMaster() {
	m.retryInterval = ctx.getI32("Connection.Retry.Interval")
	m.port = ctx.getI32("Hypertable.Master.Port")
}
`

const mongoSrc = `package mongo

type paramStore struct{}

func (s *paramStore) getParam(name string) string { return "" }

type mongodConf struct {
	dbpath  string
	logpath string
}

var store = &paramStore{}
var mconf = &mongodConf{}

func initServer() {
	mconf.dbpath = store.getParam("dbpath")
	mconf.logpath = store.getParam("logpath")
}
`

const aolserverSrc = `package aolserver

type nsconf struct{}

func (c *nsconf) configIntRange(section string, key string) int64 { return 0 }

type tcpConf struct {
	backlog    int64
	maxthreads int64
}

var ns = &nsconf{}
var tcp = &tcpConf{}

func initSock() {
	tcp.backlog = ns.configIntRange("ns/server", "backlog")
	tcp.maxthreads = ns.configIntRange("ns/server", "maxthreads")
}
`

const svnSrc = `package svn

type svnConfig struct{}

func (c *svnConfig) svnConfigGet(section string, option string) string { return "" }

type fsConf struct {
	repoPath string
}

var sconf = &svnConfig{}
var fs = &fsConf{}

func initRepos() {
	fs.repoPath = sconf.svnConfigGet("repositories", "root")
}
`

const lighttpdSrc = `package lighttpd

type srvConf struct {
	maxConns   int64
	docRoot    string
	maxWorkers int64
}

var srv = &srvConf{}

type configValue struct {
	name string
	ptr  interface{}
}

var configValues = []configValue{
	{"server.max-connections", &srv.maxConns},
	{"server.document-root", &srv.docRoot},
	{"server.max-worker", &srv.maxWorkers},
}
`

const nginxSrc = `package nginx

type coreConf struct {
	workerProcesses int64
	errorLog        string
}

var ngx = &coreConf{}

func atoi(s string) int64 { return 0 }

func setWorkerProcesses(value string) { ngx.workerProcesses = atoi(value) }
func setErrorLog(value string)        { ngx.errorLog = value }

type ngxCommand struct {
	name    string
	handler func(value string)
}

var coreCommands = []ngxCommand{
	{"worker_processes", setWorkerProcesses},
	{"error_log", setErrorLog},
}
`

const opensshSrc = `package openssh

type sshdConf struct {
	port          int64
	permitRootLogin bool
	authKeysFile  string
}

var sshd = &sshdConf{}

type sshOption struct {
	name string
	ptr  interface{}
}

var sshdOptions = []sshOption{
	{"Port", &sshd.port},
	{"PermitRootLogin", &sshd.permitRootLogin},
	{"AuthorizedKeysFile", &sshd.authKeysFile},
}
`

const postfixSrc = `package postfix

type mailConf struct {
	processLimit int64
	queueRunDelay int64
}

var mail = &mailConf{}

type intParam struct {
	name string
	ptr  *int64
	def  int64
}

var intTable = []intParam{
	{"default_process_limit", &mail.processLimit, 100},
	{"queue_run_delay", &mail.queueRunDelay, 300},
}
`
