package conffile

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

const sampleEquals = `# database config
port = 3306
; old-style comment
max_connections = 151

[section]
datadir = /var/lib/db
`

func TestParseEquals(t *testing.T) {
	f, err := Parse(sampleEquals, SyntaxEquals)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := f.Get("port"); !ok || v != "3306" {
		t.Errorf("port = %q,%v", v, ok)
	}
	if v, ok := f.Get("datadir"); !ok || v != "/var/lib/db" {
		t.Errorf("datadir = %q,%v", v, ok)
	}
	if _, ok := f.Get("missing"); ok {
		t.Error("missing key should not resolve")
	}
	if keys := f.Keys(); len(keys) != 3 {
		t.Errorf("keys = %v, want 3", keys)
	}
}

func TestParseSpace(t *testing.T) {
	src := "Listen 8080\nServerName www.example.com\nKeepAlive\n"
	f, err := Parse(src, SyntaxSpace)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := f.Get("Listen"); v != "8080" {
		t.Errorf("Listen = %q", v)
	}
	if v, _ := f.Get("ServerName"); v != "www.example.com" {
		t.Errorf("ServerName = %q", v)
	}
	// A bare directive is a boolean flag.
	if v, _ := f.Get("KeepAlive"); v != "on" {
		t.Errorf("bare directive = %q, want on", v)
	}
}

func TestRoundTripPreservesComments(t *testing.T) {
	f, err := Parse(sampleEquals, SyntaxEquals)
	if err != nil {
		t.Fatal(err)
	}
	out := f.String()
	for _, want := range []string{"# database config", "; old-style comment", "[section]"} {
		if !strings.Contains(out, want) {
			t.Errorf("serialization lost %q:\n%s", want, out)
		}
	}
	// Parse the serialization again: same directives.
	f2, err := Parse(out, SyntaxEquals)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(f, f2); len(d) != 0 {
		t.Errorf("round-trip diff: %v", d)
	}
}

func TestSetReplacesAndAppends(t *testing.T) {
	f, _ := Parse("a = 1\n", SyntaxEquals)
	f.Set("a", "2")
	if v, _ := f.Get("a"); v != "2" {
		t.Errorf("a = %q after Set", v)
	}
	f.Set("b", "3")
	if v, ok := f.Get("b"); !ok || v != "3" {
		t.Errorf("b = %q,%v after append", v, ok)
	}
	if n := len(f.Keys()); n != 2 {
		t.Errorf("keys = %d, want 2", n)
	}
}

func TestDelete(t *testing.T) {
	f, _ := Parse("a = 1\nb = 2\na = 3\n", SyntaxEquals)
	if !f.Delete("a") {
		t.Fatal("Delete(a) = false")
	}
	if _, ok := f.Get("a"); ok {
		t.Error("a still present after Delete")
	}
	if v, _ := f.Get("b"); v != "2" {
		t.Errorf("b = %q after deleting a", v)
	}
	if f.Delete("zz") {
		t.Error("Delete of a missing key must return false")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	f, _ := Parse("a = 1\n", SyntaxEquals)
	c := f.Clone()
	c.Set("a", "99")
	if v, _ := f.Get("a"); v != "1" {
		t.Errorf("mutating the clone changed the original: a = %q", v)
	}
}

func TestLineOf(t *testing.T) {
	f, _ := Parse("# c\na = 1\nb = 2\n", SyntaxEquals)
	if n, ok := f.LineOf("b"); !ok || n != 3 {
		t.Errorf("LineOf(b) = %d,%v want 3", n, ok)
	}
}

func TestDiff(t *testing.T) {
	a, _ := Parse("x = 1\ny = 2\n", SyntaxEquals)
	b := a.Clone()
	b.Set("y", "3")
	b.Set("z", "4")
	d := Diff(a, b)
	if len(d) != 2 || d[0] != "y" || d[1] != "z" {
		t.Errorf("Diff = %v, want [y z]", d)
	}
}

// Property: for generated key/value maps, building a file via Set and
// re-parsing its serialization preserves every pair, in both syntaxes.
func TestPropertySetParseRoundTrip(t *testing.T) {
	check := func(syntax Syntax) func(keys [8]uint16, vals [8]uint16) bool {
		return func(keys [8]uint16, vals [8]uint16) bool {
			f, _ := Parse("", syntax)
			want := map[string]string{}
			for i := range keys {
				k := fmt.Sprintf("key_%d", keys[i])
				v := fmt.Sprintf("v%d", vals[i])
				f.Set(k, v)
				want[k] = v
			}
			g, err := Parse(f.String(), syntax)
			if err != nil {
				return false
			}
			got := g.Map()
			if len(got) != len(want) {
				return false
			}
			for k, v := range want {
				if got[k] != v {
					return false
				}
			}
			return true
		}
	}
	if err := quick.Check(check(SyntaxEquals), nil); err != nil {
		t.Errorf("equals syntax: %v", err)
	}
	if err := quick.Check(check(SyntaxSpace), nil); err != nil {
		t.Errorf("space syntax: %v", err)
	}
}

// Property: Diff(f, f.Clone()) is always empty.
func TestPropertyCloneDiffEmpty(t *testing.T) {
	f := func(keys [6]uint8) bool {
		file, _ := Parse("", SyntaxEquals)
		for i, k := range keys {
			file.Set(fmt.Sprintf("k%d", k), fmt.Sprintf("%d", i))
		}
		return len(Diff(file, file.Clone())) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnparseableLinePreserved(t *testing.T) {
	src := "a = 1\n!!!garbage!!!\nb = 2\n"
	f, err := Parse(src, SyntaxEquals)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f.String(), "!!!garbage!!!") {
		t.Error("unparseable line dropped by serialization")
	}
	if len(f.Keys()) != 2 {
		t.Errorf("keys = %v", f.Keys())
	}
}
