// Package conffile implements a ConfErr-style abstract representation (AR)
// of configuration files (paper §3.1). A template configuration file is
// parsed into an AR, the injector mutates parameter values in the AR, and
// the AR is serialized back into a usable configuration file for testing.
//
// Two widespread syntaxes are supported, covering the evaluated systems:
//
//	key = value     (MySQL/PostgreSQL/Storage-A style; SyntaxEquals)
//	key value       (Apache/Squid/VSFTP/OpenLDAP style; SyntaxSpace)
//
// Comments (# or ;) and blank lines are preserved verbatim so the emitted
// file differs from the template only in the injected values.
package conffile

import (
	"fmt"
	"sort"
	"strings"
)

// Syntax selects the directive syntax of a configuration file.
type Syntax int

const (
	// SyntaxEquals parses "key = value" directives.
	SyntaxEquals Syntax = iota
	// SyntaxSpace parses "key value..." directives.
	SyntaxSpace
)

func (s Syntax) String() string {
	if s == SyntaxEquals {
		return "key=value"
	}
	return "key value"
}

// LineKind distinguishes AR line types.
type LineKind int

const (
	// LineDirective is a parameter assignment.
	LineDirective LineKind = iota
	// LineComment is a comment line, preserved verbatim.
	LineComment
	// LineBlank is an empty line.
	LineBlank
	// LineSection is an INI-style [section] header, preserved verbatim.
	LineSection
)

// Line is one line of the abstract representation.
type Line struct {
	Kind  LineKind
	Key   string // directive key (LineDirective only)
	Value string // directive value (LineDirective only)
	Raw   string // original text for comments/blank/section lines
	Num   int    // 1-based line number in the template
}

// File is the abstract representation of one configuration file.
type File struct {
	Syntax Syntax
	Lines  []Line
	index  map[string][]int // key -> line indices (first wins on Get)
}

// Parse parses src into an AR using the given syntax. Unparseable directive
// lines are preserved as comments so serialization is lossless; Parse never
// fails on well-formed template files shipped with the targets.
func Parse(src string, syntax Syntax) (*File, error) {
	f := &File{Syntax: syntax, index: make(map[string][]int)}
	lines := strings.Split(src, "\n")
	// A trailing newline yields one empty trailing element; drop it so
	// String() round-trips.
	if n := len(lines); n > 0 && lines[n-1] == "" {
		lines = lines[:n-1]
	}
	for i, raw := range lines {
		num := i + 1
		trimmed := strings.TrimSpace(raw)
		switch {
		case trimmed == "":
			f.Lines = append(f.Lines, Line{Kind: LineBlank, Raw: raw, Num: num})
		case strings.HasPrefix(trimmed, "#") || strings.HasPrefix(trimmed, ";"):
			f.Lines = append(f.Lines, Line{Kind: LineComment, Raw: raw, Num: num})
		case strings.HasPrefix(trimmed, "[") && strings.HasSuffix(trimmed, "]"):
			f.Lines = append(f.Lines, Line{Kind: LineSection, Raw: raw, Num: num})
		default:
			key, val, ok := splitDirective(trimmed, syntax)
			if !ok {
				f.Lines = append(f.Lines, Line{Kind: LineComment, Raw: raw, Num: num})
				continue
			}
			idx := len(f.Lines)
			f.Lines = append(f.Lines, Line{Kind: LineDirective, Key: key, Value: val, Num: num})
			f.index[key] = append(f.index[key], idx)
		}
	}
	return f, nil
}

func splitDirective(s string, syntax Syntax) (key, val string, ok bool) {
	switch syntax {
	case SyntaxEquals:
		eq := strings.Index(s, "=")
		if eq < 0 {
			return "", "", false
		}
		return strings.TrimSpace(s[:eq]), strings.TrimSpace(s[eq+1:]), true
	default: // SyntaxSpace
		sp := strings.IndexAny(s, " \t")
		if sp < 0 {
			// A bare directive acts as a boolean flag set to "on".
			return s, "on", true
		}
		return s[:sp], strings.TrimSpace(s[sp+1:]), true
	}
}

// Get returns the value of the first directive with the given key.
func (f *File) Get(key string) (string, bool) {
	idxs, ok := f.index[key]
	if !ok || len(idxs) == 0 {
		return "", false
	}
	return f.Lines[idxs[0]].Value, true
}

// Set replaces the value of key, or appends a new directive if absent.
func (f *File) Set(key, value string) {
	if idxs, ok := f.index[key]; ok && len(idxs) > 0 {
		f.Lines[idxs[0]].Value = value
		return
	}
	idx := len(f.Lines)
	f.Lines = append(f.Lines, Line{Kind: LineDirective, Key: key, Value: value, Num: idx + 1})
	f.index[key] = append(f.index[key], idx)
}

// Delete removes all directives with the given key. It reports whether any
// directive was removed.
func (f *File) Delete(key string) bool {
	idxs, ok := f.index[key]
	if !ok {
		return false
	}
	del := make(map[int]bool, len(idxs))
	for _, i := range idxs {
		del[i] = true
	}
	out := f.Lines[:0]
	for i, ln := range f.Lines {
		if !del[i] {
			out = append(out, ln)
		}
	}
	f.Lines = out
	f.reindex()
	return true
}

func (f *File) reindex() {
	f.index = make(map[string][]int)
	for i, ln := range f.Lines {
		if ln.Kind == LineDirective {
			f.index[ln.Key] = append(f.index[ln.Key], i)
		}
	}
}

// LineOf returns the template line number of the first directive for key.
func (f *File) LineOf(key string) (int, bool) {
	idxs, ok := f.index[key]
	if !ok || len(idxs) == 0 {
		return 0, false
	}
	return f.Lines[idxs[0]].Num, true
}

// Keys returns all directive keys in file order (first occurrence).
func (f *File) Keys() []string {
	var out []string
	seen := make(map[string]bool)
	for _, ln := range f.Lines {
		if ln.Kind == LineDirective && !seen[ln.Key] {
			seen[ln.Key] = true
			out = append(out, ln.Key)
		}
	}
	return out
}

// Map returns directive key/value pairs (first occurrence wins).
func (f *File) Map() map[string]string {
	m := make(map[string]string)
	for _, ln := range f.Lines {
		if ln.Kind == LineDirective {
			if _, ok := m[ln.Key]; !ok {
				m[ln.Key] = ln.Value
			}
		}
	}
	return m
}

// Clone returns a deep copy of the AR, suitable for mutation by the
// injector while keeping the template intact.
func (f *File) Clone() *File {
	nf := &File{Syntax: f.Syntax, Lines: make([]Line, len(f.Lines))}
	copy(nf.Lines, f.Lines)
	nf.reindex()
	return nf
}

// String serializes the AR back to configuration-file text.
func (f *File) String() string {
	var b strings.Builder
	for i, ln := range f.Lines {
		if i > 0 {
			b.WriteByte('\n')
		}
		switch ln.Kind {
		case LineDirective:
			if f.Syntax == SyntaxEquals {
				fmt.Fprintf(&b, "%s = %s", ln.Key, ln.Value)
			} else {
				fmt.Fprintf(&b, "%s %s", ln.Key, ln.Value)
			}
		default:
			b.WriteString(ln.Raw)
		}
	}
	b.WriteByte('\n')
	return b.String()
}

// Diff returns the keys whose values differ between two ARs, sorted.
func Diff(a, b *File) []string {
	am, bm := a.Map(), b.Map()
	var out []string
	for k, av := range am {
		if bv, ok := bm[k]; !ok || bv != av {
			out = append(out, k)
		}
	}
	for k := range bm {
		if _, ok := am[k]; !ok {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
