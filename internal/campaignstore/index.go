// Streaming snapshot writes and the outcome-index sidecar. The
// StreamWriter is the one write path for binary snapshots — Save and
// the shard merge both go through it — and it maintains two derived
// artifacts as records pass through: the snapshot fingerprint (folded
// by the encoder) and the system's outcome index, persisted beside the
// snapshot as <system>.campaign.idx. The sidecar is keyed by the
// snapshot file's name, size and mtime; LoadIndex validates that
// identity with one stat call and rebuilds from the snapshot when it
// does not hold, so a sidecar can always be deleted (or go stale via a
// foreign writer) without any loss.
package campaignstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"spex/internal/inject"
	"spex/internal/outcomeindex"
)

// indexSuffix is the outcome-index sidecar suffix. It matches neither
// snapshot suffix, so List/LoadAll never mistake a sidecar for a
// snapshot.
const indexSuffix = ".campaign.idx"

// IndexPath returns the system's outcome-index sidecar file.
func (s *Store) IndexPath(system string) string {
	return filepath.Join(s.dir, safeName(system)+indexSuffix)
}

// StreamWriter streams one snapshot into the store: Add per outcome in
// ascending key order, then Close to atomically publish the snapshot,
// its fingerprint, and its rebuilt index sidecar. The writer holds one
// outcome in memory at a time (plus the index's compact per-outcome
// projection), which is what lets the shard merge fold arbitrarily
// large shard stores without materializing them.
type StreamWriter struct {
	store *Store
	hdr   *Snapshot
	tmp   *os.File
	enc   *SnapshotEncoder
	idx   *outcomeindex.Builder
	done  bool
}

// NewStreamWriter opens a streaming save for the snapshot's system.
// hdr supplies the header metadata; its Outcomes/Stamps are ignored.
// Like Save, it lives on *Lock: the held writer lock is the only
// capability that can open the snapshot-write path.
func (l *Lock) NewStreamWriter(hdr *Snapshot) (*StreamWriter, error) {
	return l.store.newStreamWriter(hdr)
}

// NewStreamWriter opens a streaming save through the per-system
// capability. The header's system must match the lock's scope.
func (l *SystemLock) NewStreamWriter(hdr *Snapshot) (*StreamWriter, error) {
	if hdr.System != l.system {
		return nil, fmt.Errorf("campaignstore: lock scoped to system %q cannot stream a snapshot for %q", l.system, hdr.System)
	}
	return l.store.newStreamWriter(hdr)
}

// NewStreamWriter routes the streaming save to the header system's
// write capability in the set.
func (ls *LockSet) NewStreamWriter(hdr *Snapshot) (*StreamWriter, error) {
	l, err := ls.System(hdr.System)
	if err != nil {
		return nil, err
	}
	return l.NewStreamWriter(hdr)
}

func (s *Store) newStreamWriter(hdr *Snapshot) (*StreamWriter, error) {
	final := s.Path(hdr.System)
	tmp, err := os.CreateTemp(s.dir, filepath.Base(final)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("campaignstore: %w", err)
	}
	enc, err := NewSnapshotEncoder(tmp, hdr)
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, err
	}
	return &StreamWriter{
		store: s,
		hdr:   hdr,
		tmp:   tmp,
		enc:   enc,
		idx: outcomeindex.NewBuilder(outcomeindex.Meta{
			System:         hdr.System,
			SavedAt:        hdr.SavedAt,
			Options:        hdr.Options,
			SetFingerprint: hdr.SetFingerprint,
		}),
	}, nil
}

// Add appends one outcome record (keys strictly ascending).
func (w *StreamWriter) Add(key string, stamp time.Time, out inject.Outcome) error {
	if err := w.enc.Add(key, stamp, out); err != nil {
		return err
	}
	w.idx.Add(key, out)
	return nil
}

// Abort discards the partial write. Safe after Close.
func (w *StreamWriter) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.tmp.Close()
	os.Remove(w.tmp.Name())
}

// Close finalizes the container (terminator, count, CRC), fsyncs,
// renames it over the final path, removes any legacy JSON file the
// save supersedes, rewrites the index sidecar, and returns the
// snapshot fingerprint. The fsync-before-rename contract is the same
// as the JSON era's: the final path only ever holds a complete
// snapshot.
func (w *StreamWriter) Close() (string, error) {
	if w.done {
		return "", errors.New("campaignstore: stream writer already closed")
	}
	w.done = true
	defer os.Remove(w.tmp.Name()) // no-op after a successful rename
	fp, err := w.enc.Finish()
	if err != nil {
		w.tmp.Close()
		return "", err
	}
	if err := w.tmp.Sync(); err != nil {
		w.tmp.Close()
		return "", fmt.Errorf("campaignstore: %w", err)
	}
	if err := w.tmp.Close(); err != nil {
		return "", fmt.Errorf("campaignstore: %w", err)
	}
	final := w.store.Path(w.hdr.System)
	if err := os.Rename(w.tmp.Name(), final); err != nil {
		return "", fmt.Errorf("campaignstore: %w", err)
	}
	// Make the rename itself durable. Directory fsync is best-effort:
	// not every platform supports it, and the data fsync above already
	// rules out the dangerous half (durable rename, lost data).
	if d, err := os.Open(w.store.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	// The binary file now carries the state: a leftover legacy JSON
	// document would be stale the moment it survived this save.
	_ = os.Remove(w.store.LegacyPath(w.hdr.System))
	// Rebuild the sidecar. Best-effort: the index is derived data that
	// LoadIndex reconstructs from the snapshot if this write fails.
	if fi, err := os.Stat(final); err == nil {
		w.idx.SetFingerprint(fp)
		_ = outcomeindex.WriteFile(w.store.IndexPath(w.hdr.System), &outcomeindex.File{
			Version:   outcomeindex.Version,
			Snap:      filepath.Base(final),
			SnapSize:  fi.Size(),
			SnapMTime: fi.ModTime().UnixNano(),
			Sys:       w.idx.Finish(),
		})
	}
	return fp, nil
}

// Snapshots returns the store's snapshot files keyed by system name —
// strict like LoadAll (an unreadable or misfiled snapshot header is an
// error, because a merge must never silently skip a shard's data), but
// without decoding any outcome records.
func (s *Store) Snapshots() (map[string]string, error) {
	names, err := s.snapshotFiles()
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(names))
	for _, name := range names {
		path := filepath.Join(s.dir, name)
		system, err := readSystemName(path)
		if err != nil || system == "" {
			return nil, fmt.Errorf("campaignstore: corrupt snapshot for %s", name)
		}
		base := safeName(system)
		if name != base+snapSuffix && name != base+legacySuffix {
			return nil, fmt.Errorf("campaignstore: %s names system %q, which belongs in %s",
				name, system, base+snapSuffix)
		}
		out[system] = path
	}
	return out, nil
}

// SnapshotInfo returns the path and stat of the snapshot file Load
// would read for the system (the binary file, or the legacy JSON file
// of a not-yet-migrated store). The (size, mtime) pair is the cache key
// the daemon's read path invalidates on: every save is an atomic rename
// that changes both.
func (s *Store) SnapshotInfo(system string) (string, os.FileInfo, error) {
	p := s.Path(system)
	fi, err := os.Stat(p)
	if errors.Is(err, os.ErrNotExist) {
		p = s.LegacyPath(system)
		fi, err = os.Stat(p)
		if errors.Is(err, os.ErrNotExist) {
			return "", nil, fmt.Errorf("%w for %s", ErrNotExist, system)
		}
	}
	if err != nil {
		return "", nil, fmt.Errorf("campaignstore: %w", err)
	}
	return p, fi, nil
}

// LoadIndex returns the system's outcome index: the persisted sidecar
// when it matches the snapshot on disk, otherwise a rebuild from the
// snapshot (which also rewrites the sidecar, so the next read is
// cheap). Errors mirror Load's — ErrNotExist when the system has no
// snapshot, and any snapshot validation failure surfaces unchanged,
// because an index must never outlive the fail-safe checks of the data
// it summarizes.
func (s *Store) LoadIndex(system string) (*outcomeindex.System, error) {
	path, fi, err := s.SnapshotInfo(system)
	if err != nil {
		return nil, err
	}
	ipath := s.IndexPath(system)
	if f, err := outcomeindex.ReadFile(ipath); err == nil &&
		f.Snap == filepath.Base(path) && f.SnapSize == fi.Size() &&
		f.SnapMTime == fi.ModTime().UnixNano() && f.Sys.System == system {
		return f.Sys, nil
	}
	snap, err := s.Load(system)
	if err != nil {
		return nil, err
	}
	fp, err := snap.Fingerprint()
	if err != nil {
		return nil, err
	}
	sys := outcomeindex.Build(outcomeindex.Meta{
		System:         snap.System,
		Fingerprint:    fp,
		SavedAt:        snap.SavedAt,
		Options:        snap.Options,
		SetFingerprint: snap.SetFingerprint,
	}, snap.Outcomes)
	_ = outcomeindex.WriteFile(ipath, &outcomeindex.File{
		Version:   outcomeindex.Version,
		Snap:      filepath.Base(path),
		SnapSize:  fi.Size(),
		SnapMTime: fi.ModTime().UnixNano(),
		Sys:       sys,
	})
	return sys, nil
}

// LoadIndexAll loads every system's index, sorted by system name.
func (s *Store) LoadIndexAll() ([]*outcomeindex.System, error) {
	systems, err := s.List()
	if err != nil {
		return nil, err
	}
	out := make([]*outcomeindex.System, 0, len(systems))
	for _, name := range systems {
		sys, err := s.LoadIndex(name)
		if err != nil {
			return nil, err
		}
		out = append(out, sys)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].System < out[j].System })
	return out, nil
}
