package campaignstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"testing"
	"time"

	"spex/internal/confgen"
	"spex/internal/inject"
)

// benchSnapshot builds an n-outcome snapshot shaped like a real
// campaign's (misconf payloads, log dumps on failures, source locs).
func benchSnapshot(n int) *Snapshot {
	c := basicC("p")
	outcomes := make(map[string]inject.Outcome, n)
	for i := 0; i < n; i++ {
		m := confgen.Misconf{
			ID: fmt.Sprintf("m%06d", i), Param: fmt.Sprintf("param%d", i%40),
			Rule:        "null",
			Values:      map[string]string{fmt.Sprintf("param%d", i%40): "bad-value"},
			Violates:    c,
			Description: "injected out-of-range value",
		}
		o := inject.Outcome{Misconf: m, Reaction: inject.Reaction(i % 4), SimCost: i % 17, Pinpointed: i%2 == 0}
		if i%3 == 0 {
			o.FailedTest = "ping"
			o.LogDump = "ERR request failed: connection reset by peer\nWARN retrying\n"
		}
		outcomes[inject.CacheKey(m)] = o
	}
	snap := New("benchsys", mkSet(c), inject.DefaultOptions(), outcomes)
	snap.SavedAt = time.Unix(1700000000, 0).UTC()
	return snap
}

// encodeBinary streams the snapshot through the container codec.
func encodeBinary(snap *Snapshot) ([]byte, error) {
	var buf bytes.Buffer
	enc, err := NewSnapshotEncoder(&buf, snap)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(snap.Outcomes))
	for k := range snap.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := enc.Add(k, snap.SavedAt, snap.Outcomes[k]); err != nil {
			return nil, err
		}
	}
	if _, err := enc.Finish(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// BenchmarkSnapshotCodec compares the binary container against the
// legacy JSON document on the same 5000-outcome snapshot. SetBytes
// reports MB/s over each format's own encoded size.
func BenchmarkSnapshotCodec(b *testing.B) {
	snap := benchSnapshot(5000)

	bin, err := encodeBinary(snap)
	if err != nil {
		b.Fatal(err)
	}
	// The legacy writer used MarshalIndent; plain Marshal is the
	// conservative (faster) baseline.
	jsonData, err := json.Marshal(snap)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("encoded size: binary %d bytes, json %d bytes", len(bin), len(jsonData))

	b.Run("encode/binary", func(b *testing.B) {
		b.SetBytes(int64(len(bin)))
		for i := 0; i < b.N; i++ {
			if _, err := encodeBinary(snap); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode/json", func(b *testing.B) {
		b.SetBytes(int64(len(jsonData)))
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(snap); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode/binary", func(b *testing.B) {
		b.SetBytes(int64(len(bin)))
		for i := 0; i < b.N; i++ {
			if _, err := decodeBinarySnapshot(bin, "benchsys"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode/json", func(b *testing.B) {
		b.SetBytes(int64(len(jsonData)))
		for i := 0; i < b.N; i++ {
			if _, err := decodeSnapshot(jsonData, "benchsys"); err != nil {
				b.Fatal(err)
			}
		}
	})
}
