package campaignstore

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/constraint"
	"spex/internal/inject"
	"spex/internal/sim"
)

// storeSystem is a minimal sim.System whose boots are counted, so tests
// can assert exactly which misconfigurations re-executed vs replayed.
type storeSystem struct {
	boots atomic.Int32
}

func (s *storeSystem) Name() string                       { return "storefake" }
func (s *storeSystem) Description() string                { return "fake target for store tests" }
func (s *storeSystem) Syntax() conffile.Syntax            { return conffile.SyntaxEquals }
func (s *storeSystem) DefaultConfig() string              { return "p = good\nq = 1\n" }
func (s *storeSystem) Sources() map[string]string         { return nil }
func (s *storeSystem) Annotations() string                { return "" }
func (s *storeSystem) Manual() map[string]sim.ManualEntry { return nil }
func (s *storeSystem) GroundTruth() *constraint.Set       { return constraint.NewSet("storefake") }
func (s *storeSystem) SetupEnv(env *sim.Env)              {}
func (s *storeSystem) Tests() []sim.FuncTest {
	return []sim.FuncTest{{
		Name: "ping", Weight: 2,
		Run: func(env *sim.Env, inst sim.Instance) error {
			if v, _ := inst.Effective("p"); v == "bad" {
				return fmt.Errorf("request failed")
			}
			return nil
		},
	}}
}

type storeInstance struct{ effective map[string]string }

func (i *storeInstance) Effective(p string) (string, bool) {
	v, ok := i.effective[p]
	return v, ok
}
func (i *storeInstance) Stop() {}

func (s *storeSystem) Start(env *sim.Env, cfg *conffile.File) (sim.Instance, error) {
	s.boots.Add(1)
	eff := map[string]string{}
	for _, p := range []string{"p", "q"} {
		if v, ok := cfg.Get(p); ok {
			eff[p] = v
		}
	}
	if eff["p"] == "crash" {
		panic("segfault")
	}
	return &storeInstance{effective: eff}, nil
}

func basicC(p string) *constraint.Constraint {
	return &constraint.Constraint{Kind: constraint.KindBasicType, Param: p, Basic: constraint.BasicString}
}

func rangeC(p string, min int64) *constraint.Constraint {
	return &constraint.Constraint{Kind: constraint.KindRange, Param: p,
		Intervals: []constraint.Interval{{HasMin: true, Min: min, Valid: true}}}
}

func mkSet(cs ...*constraint.Constraint) *constraint.Set {
	s := constraint.NewSet("storefake")
	for _, c := range cs {
		s.Add(c)
	}
	return s
}

// misconfs builds n misconfigurations against c, with values cycling
// through good / bad / crash so the campaign produces a mix of
// reactions (including vulnerabilities).
func misconfs(c *constraint.Constraint, n int) []confgen.Misconf {
	values := []string{"good", "bad", "crash"}
	var ms []confgen.Misconf
	for i := 0; i < n; i++ {
		ms = append(ms, confgen.Misconf{
			ID: fmt.Sprintf("m%02d", i), Param: "p",
			Values:   map[string]string{"p": values[i%len(values)]},
			Violates: c,
		})
	}
	return ms
}

func TestSnapshotRoundTrip(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	set := mkSet(basicC("p"), rangeC("q", 1))
	outcomes := map[string]inject.Outcome{
		"k1": {Misconf: confgen.Misconf{ID: "m1", Param: "p", Values: map[string]string{"p": "bad"}},
			Reaction: inject.ReactionFuncFailure, FailedTest: "ping", SimCost: 3, LogDump: "ERR x\n"},
		"k2": {Misconf: confgen.Misconf{ID: "m2", Param: "p", Values: map[string]string{"p": "good"}},
			Reaction: inject.ReactionTolerated, SimCost: 3},
	}
	if err := store.save(New("storefake", set, inject.DefaultOptions(), outcomes)); err != nil {
		t.Fatal(err)
	}
	snap, err := store.Load("storefake")
	if err != nil {
		t.Fatal(err)
	}
	if snap.System != "storefake" || snap.SetFingerprint != set.Fingerprint() {
		t.Fatalf("snapshot header = %q/%q", snap.System, snap.SetFingerprint)
	}
	if snap.Constraints.Len() != 2 {
		t.Fatalf("constraint set lost entries: %d", snap.Constraints.Len())
	}
	if len(snap.Outcomes) != 2 {
		t.Fatalf("outcomes lost: %d", len(snap.Outcomes))
	}
	o := snap.Outcomes["k1"]
	if o.Reaction != inject.ReactionFuncFailure || o.FailedTest != "ping" || o.SimCost != 3 || o.LogDump != "ERR x\n" {
		t.Fatalf("outcome round trip mangled: %+v", o)
	}
	// The misconfiguration identity survives: recomputing the cache key
	// from the deserialized Misconf matches recomputing it pre-save.
	if inject.CacheKey(o.Misconf) != inject.CacheKey(outcomes["k1"].Misconf) {
		t.Fatal("CacheKey differs after round trip")
	}
}

func TestLoadMissingSnapshot(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load("storefake"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestLoadRejectsCorruptSnapshot(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(store.Path("storefake"), []byte("{half a docu"), 0o644); err != nil {
		t.Fatal(err)
	}
	if snap, err := store.Load("storefake"); err == nil || snap != nil {
		t.Fatalf("corrupt snapshot loaded: %+v, %v", snap, err)
	}
}

func TestLoadRejectsStaleSchema(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	set := mkSet(basicC("p"))
	// Write the snapshot as an older (pre-binary) build would have: a
	// legacy JSON document carrying a foreign schema fingerprint.
	snap := New("storefake", set, inject.DefaultOptions(), nil)
	snap.Schema = "v0-deadbeefdeadbeef"
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(store.LegacyPath("storefake"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load("storefake"); !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v, want ErrStale", err)
	}

	// The same staleness check guards the binary container's header.
	if err := store.save(New("storefake2", set, inject.DefaultOptions(), nil)); err != nil {
		t.Fatal(err)
	}
	bin, err := os.ReadFile(store.Path("storefake2"))
	if err != nil {
		t.Fatal(err)
	}
	bin = []byte(strings.Replace(string(bin), SchemaFingerprint(), "v0-0123456789abcdef", 1))
	if err := os.WriteFile(store.Path("storefake2"), bin, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load("storefake2"); !errors.Is(err, ErrStale) {
		t.Fatalf("binary err = %v, want ErrStale", err)
	}
}

func TestLoadRejectsFingerprintMismatch(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap := New("storefake", mkSet(basicC("p")), inject.DefaultOptions(), nil)
	snap.SetFingerprint = "0000000000000000"
	if err := store.save(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load("storefake"); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("err = %v, want constraint fingerprint failure", err)
	}
}

func TestCampaignReplaysAcrossRuns(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sys := &storeSystem{}
	c := basicC("p")
	set := mkSet(c)
	ms := misconfs(c, 9)
	opts := inject.DefaultOptions()

	// Run 1: full campaign, snapshot rebuilt from scratch.
	rep1, st1, err := Campaign(context.Background(), testWriter(store, sys.Name()), sys, set, ms, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Replayed || st1.Fallback == "" || !st1.Saved {
		t.Fatalf("first run status = %+v, want full-campaign fallback with a saved snapshot", st1)
	}
	if rep1.Replayed != 0 || rep1.TotalSimCost == 0 {
		t.Fatalf("first run replayed=%d cost=%d, want a fully fresh campaign", rep1.Replayed, rep1.TotalSimCost)
	}
	boots1 := sys.boots.Load()
	if boots1 != 9 {
		t.Fatalf("first run booted %d times, want 9", boots1)
	}

	// Run 2: unchanged constraints — everything replays, zero fresh cost.
	rep2, st2, err := Campaign(context.Background(), testWriter(store, sys.Name()), sys, set, ms, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Replayed || st2.Retests != 0 {
		t.Fatalf("second run status = %+v, want replay with zero retests", st2)
	}
	if rep2.Replayed != 9 || rep2.TotalSimCost != 0 {
		t.Fatalf("second run replayed=%d cost=%d, want 9/0", rep2.Replayed, rep2.TotalSimCost)
	}
	if sys.boots.Load() != boots1 {
		t.Fatalf("second run booted the system %d extra times", sys.boots.Load()-boots1)
	}
	if got, want := rep2.CountByReaction(), rep1.CountByReaction(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("replayed tallies differ: %v vs %v", got, want)
	}

	// Run 3: the constraint's identity changed — every misconfiguration
	// violating it re-executes.
	c2 := rangeC("p", 5)
	set2 := mkSet(c2)
	ms2 := misconfs(c2, 9)
	rep3, st3, err := Campaign(context.Background(), testWriter(store, sys.Name()), sys, set2, ms2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st3.Replayed || st3.Retests != 9 {
		t.Fatalf("revision run status = %+v, want 9 delta retests", st3)
	}
	if rep3.TotalSimCost == 0 {
		t.Fatal("revision run executed nothing fresh")
	}
}

func TestCampaignDeltaRetestsOnlyAffected(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sys := &storeSystem{}
	cP := basicC("p")
	cQ := rangeC("q", 1)
	ms := misconfs(cP, 6)
	ms = append(ms, confgen.Misconf{
		ID: "q-low", Param: "q", Values: map[string]string{"q": "0"}, Violates: cQ,
	})

	if _, _, err := Campaign(context.Background(), testWriter(store, sys.Name()), sys, mkSet(cP, cQ), ms, inject.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	boots := sys.boots.Load()

	// Revision moves q's range; p's six misconfigurations must replay
	// and only q's re-executes.
	cQ2 := rangeC("q", 4)
	ms2 := append(append([]confgen.Misconf(nil), ms[:6]...), confgen.Misconf{
		ID: "q-low", Param: "q", Values: map[string]string{"q": "0"}, Violates: cQ2,
	})
	rep, st, err := Campaign(context.Background(), testWriter(store, sys.Name()), sys, mkSet(cP, cQ2), ms2, inject.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Replayed || st.Retests != 1 {
		t.Fatalf("status = %+v, want exactly one delta retest", st)
	}
	if rep.Replayed != 6 {
		t.Fatalf("replayed %d outcomes, want 6", rep.Replayed)
	}
	if got := sys.boots.Load() - boots; got != 1 {
		t.Fatalf("revision booted %d times, want 1 (only q)", got)
	}
}

func TestCampaignFallsBackOnStaleSnapshot(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sys := &storeSystem{}
	c := basicC("p")
	set := mkSet(c)
	ms := misconfs(c, 6)
	if _, _, err := Campaign(context.Background(), testWriter(store, sys.Name()), sys, set, ms, inject.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	// Corrupt the snapshot's schema in place.
	data, err := os.ReadFile(store.Path(sys.Name()))
	if err != nil {
		t.Fatal(err)
	}
	data = []byte(strings.Replace(string(data), SchemaFingerprint(), "v0-0123456789abcdef", 1))
	if err := os.WriteFile(store.Path(sys.Name()), data, 0o644); err != nil {
		t.Fatal(err)
	}

	boots := sys.boots.Load()
	rep, st, err := Campaign(context.Background(), testWriter(store, sys.Name()), sys, set, ms, inject.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed || !strings.Contains(st.Fallback, "stale") {
		t.Fatalf("status = %+v, want stale-schema fallback", st)
	}
	if rep.Replayed != 0 {
		t.Fatalf("stale snapshot replayed %d outcomes", rep.Replayed)
	}
	if got := sys.boots.Load() - boots; got != 6 {
		t.Fatalf("fallback booted %d times, want the full 6", got)
	}
	// The rebuilt snapshot is valid again.
	if _, err := store.Load(sys.Name()); err != nil {
		t.Fatalf("snapshot not rebuilt after fallback: %v", err)
	}
}

func TestCampaignFallsBackOnChangedOptions(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sys := &storeSystem{}
	c := basicC("p")
	set := mkSet(c)
	ms := misconfs(c, 6)
	if _, _, err := Campaign(context.Background(), testWriter(store, sys.Name()), sys, set, ms, inject.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	boots := sys.boots.Load()

	// The optimizations change what SimCost/FailedTest measure, so a
	// -no-optimizations run must not replay optimized outcomes.
	noOpt := inject.DefaultOptions()
	noOpt.StopOnFirstFailure = false
	noOpt.SortTests = false
	rep, st, err := Campaign(context.Background(), testWriter(store, sys.Name()), sys, set, ms, noOpt)
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed || !strings.Contains(st.Fallback, "options changed") {
		t.Fatalf("status = %+v, want options-changed fallback", st)
	}
	if rep.Replayed != 0 || sys.boots.Load()-boots != 6 {
		t.Fatalf("optimized outcomes replayed under -no-optimizations (replayed=%d, boots=%d)",
			rep.Replayed, sys.boots.Load()-boots)
	}

	// The rebuilt snapshot replays for the same no-opt options...
	rep2, st2, err := Campaign(context.Background(), testWriter(store, sys.Name()), sys, set, ms, noOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Replayed || rep2.Replayed != 6 {
		t.Fatalf("no-opt snapshot did not replay for matching options: %+v", st2)
	}
}

func TestCampaignCancelThenResume(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sys := &storeSystem{}
	c := basicC("p")
	set := mkSet(c)
	ms := misconfs(c, 20)

	// Cancel after the third completed outcome; the campaign runs
	// sequentially so exactly the finished prefix is recorded.
	ctx, cancel := context.WithCancel(context.Background())
	opts := inject.DefaultOptions()
	opts.Workers = 1
	opts.Progress = func(p inject.Progress) {
		if p.Done == 3 {
			cancel()
		}
	}
	rep, st, err := Campaign(ctx, testWriter(store, sys.Name()), sys, set, ms, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !st.Saved {
		t.Fatal("cancelled run did not save its partial snapshot")
	}
	finished := 0
	for _, o := range rep.Outcomes {
		if o.Err == "" {
			finished++
		}
	}
	snap, err := store.Load(sys.Name())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Outcomes) != finished {
		t.Fatalf("snapshot holds %d outcomes, want the %d finished ones", len(snap.Outcomes), finished)
	}
	for _, o := range snap.Outcomes {
		if o.Err != "" || o.Skipped {
			t.Fatalf("snapshot cached an unfinished outcome: %+v", o)
		}
	}

	// Resume: only the unfinished misconfigurations re-execute.
	boots := sys.boots.Load()
	rep2, st2, err := Campaign(context.Background(), testWriter(store, sys.Name()), sys, set, ms, inject.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Replayed || st2.Retests != 0 {
		t.Fatalf("resume status = %+v", st2)
	}
	if rep2.Replayed != finished {
		t.Fatalf("resume replayed %d outcomes, want %d", rep2.Replayed, finished)
	}
	if got, want := int(sys.boots.Load()-boots), len(ms)-finished; got != want {
		t.Fatalf("resume booted %d times, want exactly the %d unfinished", got, want)
	}
}

// TestLoadRejectsZeroLengthSnapshot: the fail-safe the fsync in Save
// protects — if a crash ever did leave an empty file at the final path,
// Load must refuse it (falling the run back to a full campaign) instead
// of replaying garbage or erroring forever.
func TestLoadRejectsZeroLengthSnapshot(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(store.Path("storefake"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load("storefake"); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("Load of zero-length snapshot = %v, want a corrupt-snapshot error", err)
	}
}

// TestSaveSurvivesReplacement: Save over an existing snapshot goes
// through the temp+fsync+rename path and leaves a loadable document.
func TestSaveSurvivesReplacement(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	set := mkSet(basicC("p"))
	for i := 0; i < 3; i++ {
		snap := New("storefake", set, inject.DefaultOptions(), map[string]inject.Outcome{})
		if err := store.save(snap); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	if _, err := store.Load("storefake"); err != nil {
		t.Fatalf("load after repeated saves: %v", err)
	}
}

// TestFingerprintIgnoresSavedAt: the replay-equivalence fingerprint must
// be stable across save times (shards save at different moments) but
// sensitive to outcome content.
func TestFingerprintIgnoresSavedAt(t *testing.T) {
	set := mkSet(basicC("p"))
	c := set.Constraints[0]
	ms := misconfs(c, 2)
	outcomes := map[string]inject.Outcome{
		inject.CacheKey(ms[0]): {Misconf: ms[0], Reaction: inject.ReactionGood},
	}
	a := New("storefake", set, inject.DefaultOptions(), outcomes)
	b := New("storefake", set, inject.DefaultOptions(), outcomes)
	b.SavedAt = b.SavedAt.Add(48 * time.Hour)
	fa, err := a.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Errorf("fingerprint changed with SavedAt: %s vs %s", fa, fb)
	}
	b.Outcomes[inject.CacheKey(ms[1])] = inject.Outcome{Misconf: ms[1], Reaction: inject.ReactionCrash}
	fc, err := b.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fc == fa {
		t.Error("fingerprint did not change with outcome content")
	}
}

// TestListReturnsSavedSystems: List names every system with a snapshot,
// sorted, skipping files that do not parse.
func TestListReturnsSavedSystems(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"zeta", "alpha"} {
		snap := New(name, constraint.NewSet(name), inject.DefaultOptions(), map[string]inject.Outcome{})
		if err := store.save(snap); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(store.Path("broken"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "zeta"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("List = %v, want %v", got, want)
	}
}

// TestLockExcludesSecondWriter: the satellite fix for two un-sharded
// runs silently racing temp+rename saves in one state dir — the second
// Lock must fail fast with an error naming the holder.
func TestLockExcludesSecondWriter(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	lock, err := store.Lock()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Lock(); err == nil {
		t.Fatal("second Lock on a held store succeeded")
	} else if !strings.Contains(err.Error(), "locked by pid") {
		t.Errorf("conflict error %q does not name the holder", err)
	}
	if err := lock.Unlock(); err != nil {
		t.Fatal(err)
	}
	// Released: the next writer acquires immediately.
	lock2, err := store.Lock()
	if err != nil {
		t.Fatalf("Lock after Unlock: %v", err)
	}
	if err := lock2.Unlock(); err != nil {
		t.Fatal(err)
	}
	if err := lock2.Unlock(); err != nil {
		t.Errorf("double Unlock should be harmless, got %v", err)
	}
}

// TestLockStaleTakeover: a lock whose same-host holder is dead (a
// crashed campaign) and a lock that does not parse are both taken over
// instead of wedging the state dir forever.
func TestLockStaleTakeover(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	host, _ := os.Hostname()
	// PID 1 is init — alive but not ours; use a PID that cannot exist.
	dead, err := json.Marshal(lockInfo{PID: 1 << 30, Host: host, AcquiredAt: time.Now().UTC()})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, lockName), dead, 0o644); err != nil {
		t.Fatal(err)
	}
	lock, err := store.Lock()
	if err != nil {
		t.Fatalf("Lock over a dead holder's file: %v", err)
	}
	lock.Unlock()

	if err := os.WriteFile(filepath.Join(dir, lockName), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	lock, err = store.Lock()
	if err != nil {
		t.Fatalf("Lock over an unparsable lock file: %v", err)
	}
	lock.Unlock()

	// Age backstop: even a probe-alive same-host PID goes stale once
	// the lock file stops being refreshed — the PID-reuse escape hatch.
	// Staleness keys on the file's mtime (live holders re-stamp it), so
	// the test ages the mtime, not just the recorded AcquiredAt.
	aged, err := json.Marshal(lockInfo{PID: os.Getpid(), Host: host,
		AcquiredAt: time.Now().UTC().Add(-2 * LockStaleAfter)})
	if err != nil {
		t.Fatal(err)
	}
	lockPath := filepath.Join(dir, lockName)
	if err := os.WriteFile(lockPath, aged, 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * LockStaleAfter)
	if err := os.Chtimes(lockPath, old, old); err != nil {
		t.Fatal(err)
	}
	lock, err = store.Lock()
	if err != nil {
		t.Fatalf("Lock over an expired same-host lock: %v", err)
	}
	lock.Unlock()
}

// TestLockForeignHostHonored: a fresh lock from another host cannot be
// probed and must be honored; only age makes it stale.
func TestLockForeignHostHonored(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := json.Marshal(lockInfo{PID: 1, Host: "some-other-host", AcquiredAt: time.Now().UTC()})
	if err := os.WriteFile(filepath.Join(dir, lockName), fresh, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Lock(); err == nil {
		t.Error("fresh foreign-host lock was not honored")
	}
	expired, _ := json.Marshal(lockInfo{PID: 1, Host: "some-other-host",
		AcquiredAt: time.Now().UTC().Add(-2 * LockStaleAfter)})
	lockPath := filepath.Join(dir, lockName)
	if err := os.WriteFile(lockPath, expired, 0o644); err != nil {
		t.Fatal(err)
	}
	// An unrefreshed lock's mtime freezes at its last heartbeat.
	frozen := time.Now().Add(-2 * LockStaleAfter)
	if err := os.Chtimes(lockPath, frozen, frozen); err != nil {
		t.Fatal(err)
	}
	lock, err := store.Lock()
	if err != nil {
		t.Errorf("expired foreign-host lock was not taken over: %v", err)
	} else {
		lock.Unlock()
	}
}

// TestLockFileInvisibleToStore: the lock file must never be mistaken
// for a snapshot by List or LoadAll.
func TestLockFileInvisibleToStore(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	lock, err := store.Lock()
	if err != nil {
		t.Fatal(err)
	}
	defer lock.Unlock()
	if systems, err := store.List(); err != nil || len(systems) != 0 {
		t.Errorf("List = %v, %v with only a lock file present", systems, err)
	}
	if snaps, err := store.LoadAll(); err != nil || len(snaps) != 0 {
		t.Errorf("LoadAll = %d snaps, %v with only a lock file present", len(snaps), err)
	}
}

// TestUnlockAfterTakeoverLeavesSuccessorLock: a holder whose lock was
// taken over (age backstop) must not delete the successor's lock on
// its own way out.
func TestUnlockAfterTakeoverLeavesSuccessorLock(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	oldLock, err := store.Lock()
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the successor's takeover: replace the file with another
	// holder's claim.
	host, _ := os.Hostname()
	successor, _ := json.Marshal(lockInfo{PID: os.Getpid() + 1, Host: host, AcquiredAt: time.Now().UTC()})
	if err := os.WriteFile(filepath.Join(dir, lockName), successor, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := oldLock.Unlock(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, lockName)); err != nil {
		t.Errorf("the displaced holder's Unlock removed the successor's lock: %v", err)
	}
}

// testWriter returns a write-capable per-system handle without
// claiming the lock file: these tests exercise Campaign's replay logic
// against private temp stores, and the lock-file contract has its own
// tests above.
func testWriter(s *Store, system string) *SystemLock {
	return &SystemLock{store: s, system: system}
}
