// Store metrics: persistence costs (save/load latency, snapshot
// size) and the replay policy's decisions (outcomes seeded for
// replay, delta retests, full-campaign fallbacks) feed the
// process-global obs registry.
package campaignstore

import "spex/internal/obs"

const (
	metricSaves            = "spex_store_saves_total"
	metricSaveErrors       = "spex_store_save_errors_total"
	metricSaveSeconds      = "spex_store_save_seconds"
	metricSnapshotBytes    = "spex_store_snapshot_bytes"
	metricLoads            = "spex_store_loads_total"
	metricLoadErrors       = "spex_store_load_errors_total"
	metricLoadSeconds      = "spex_store_load_seconds"
	metricPrepareReplayed  = "spex_store_prepare_replayed_outcomes_total"
	metricPrepareRetests   = "spex_store_prepare_retests_total"
	metricPrepareFallbacks = "spex_store_prepare_fallbacks_total"
)

var (
	mSaves            = obs.Default().Counter(metricSaves, "snapshots saved")
	mSaveErrors       = obs.Default().Counter(metricSaveErrors, "snapshot saves that failed")
	mSaveSeconds      = obs.Default().Histogram(metricSaveSeconds, "wall-clock seconds per snapshot save", obs.DurationBuckets)
	mSnapshotBytes    = obs.Default().Histogram(metricSnapshotBytes, "bytes per saved snapshot file", obs.SizeBuckets)
	mLoads            = obs.Default().Counter(metricLoads, "snapshots loaded and validated")
	mLoadErrors       = obs.Default().Counter(metricLoadErrors, "snapshot loads that failed validation (missing snapshots excluded)")
	mLoadSeconds      = obs.Default().Histogram(metricLoadSeconds, "wall-clock seconds per snapshot load", obs.DurationBuckets)
	mPrepareReplayed  = obs.Default().Counter(metricPrepareReplayed, "outcomes seeded into the replay cache by Prepare")
	mPrepareRetests   = obs.Default().Counter(metricPrepareRetests, "misconfigurations the constraint delta selected for re-execution")
	mPrepareFallbacks = obs.Default().Counter(metricPrepareFallbacks, "Prepare calls that fell back to a full campaign")
)
