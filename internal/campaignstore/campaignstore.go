// Package campaignstore persists SPEX-INJ campaign state across process
// runs, making the paper's "the campaign is a one-time cost" claim
// (§3.1) hold end to end: a snapshot records the inferred constraint
// set together with every recorded outcome, so the next run Diffs a
// fresh inference against the stored set and re-executes only the
// constraints the revision touched. Everything else replays from the
// snapshot at zero simulated cost.
//
// A snapshot is a versioned JSON document saved atomically (write to a
// temporary file, then rename) under a state directory, one file per
// target system. Loading is fail-safe: a missing, corrupt, truncated or
// schema-stale snapshot never replays outcomes — Load reports why, and
// the drivers fall back to a full campaign that rebuilds the snapshot.
//
// The schema fingerprint covers every encoding a snapshot depends on:
// the store's own layout version, the numeric values of the env-action
// kinds (embedded raw in inject.CacheKey), the reaction encoding
// (persisted inside each Outcome), and the constraint-kind encoding
// (behind constraint IDs and the diff). Renumbering any of them would
// silently remap old snapshots onto wrong meanings, so the fingerprint
// makes such snapshots stale instead.
package campaignstore

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"spex/internal/confgen"
	"spex/internal/constraint"
	"spex/internal/inject"
	"spex/internal/sim"
)

// SchemaVersion is the snapshot layout version. Bump it on any change
// to the Snapshot structure or the meaning of its fields; old snapshots
// then fail safe into a full campaign.
const SchemaVersion = 1

var (
	// ErrNotExist reports that no snapshot has been saved for the system
	// yet — the normal first-run condition.
	ErrNotExist = errors.New("campaignstore: no snapshot")
	// ErrStale reports that a snapshot exists but was written under a
	// different schema fingerprint and must not be replayed.
	ErrStale = errors.New("campaignstore: snapshot schema is stale")
)

// SchemaFingerprint identifies the encodings this build persists. A
// snapshot whose fingerprint differs was written by an incompatible
// build and is treated as stale.
func SchemaFingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "campaignstore schema v%d\n", SchemaVersion)
	// CacheKey embeds raw env-action kind values; renumbering the iota
	// must invalidate old snapshots.
	fmt.Fprintf(h, "env-kinds OccupyPort=%d MakeDir=%d MakeUnreadable=%d EnsureMissing=%d\n",
		confgen.EnvOccupyPort, confgen.EnvMakeDir, confgen.EnvMakeUnreadable, confgen.EnvEnsureMissing)
	// Reactions are persisted as integers inside each Outcome.
	for r := inject.ReactionCrash; r <= inject.ReactionTolerated; r++ {
		fmt.Fprintf(h, "reaction %d=%s\n", int(r), r)
	}
	// Constraint kinds sit behind both constraint identity and the diff.
	for k := constraint.KindBasicType; k <= constraint.KindValueRel; k++ {
		fmt.Fprintf(h, "kind %d=%s\n", int(k), k)
	}
	return fmt.Sprintf("v%d-%s", SchemaVersion, hex.EncodeToString(h.Sum(nil))[:16])
}

// Snapshot is one system's persisted campaign state.
type Snapshot struct {
	// Schema is the writing build's SchemaFingerprint.
	Schema string `json:"schema"`
	// System is the target system's name.
	System string `json:"system"`
	// SavedAt records when the snapshot was written.
	SavedAt time.Time `json:"saved_at"`
	// Options identifies the campaign options the outcomes were recorded
	// under (OptionsID). A run with different outcome-affecting options
	// must not replay them — e.g. a -no-optimizations run measures
	// different SimCost/FailedTest data than an optimized one.
	Options string `json:"options"`
	// SetFingerprint is Constraints.Fingerprint() at save time, both a
	// corruption guard and a cheap "did anything change?" signal.
	SetFingerprint string `json:"set_fingerprint"`
	// Constraints is the inferred constraint set the outcomes were
	// recorded under; a fresh inference run is Diffed against it.
	Constraints *constraint.Set `json:"constraints"`
	// Outcomes holds every recorded outcome keyed by inject.CacheKey.
	Outcomes map[string]inject.Outcome `json:"outcomes"`
}

// OptionsID renders the outcome-affecting campaign options as a stable
// identity string. Scheduling knobs (Workers, Progress, SimCostDelay,
// Cache) are excluded — they change how outcomes are measured, not what
// is measured.
func OptionsID(opts inject.Options) string {
	hang := opts.HangDeadline
	if hang == 0 {
		hang = inject.DefaultHangDeadline // what RunContext will apply
	}
	return fmt.Sprintf("stop-on-first=%v sort-tests=%v hang=%s keep-all-logs=%v",
		opts.StopOnFirstFailure, opts.SortTests, hang, opts.KeepAllLogs)
}

// New assembles a snapshot for the system from the constraint set and
// campaign options the outcomes were recorded under and the result
// cache's exported entries.
func New(system string, set *constraint.Set, opts inject.Options, outcomes map[string]inject.Outcome) *Snapshot {
	return &Snapshot{
		Schema:         SchemaFingerprint(),
		System:         system,
		SavedAt:        time.Now().UTC(),
		Options:        OptionsID(opts),
		SetFingerprint: set.Fingerprint(),
		Constraints:    set,
		Outcomes:       outcomes,
	}
}

// Store is a state directory holding one snapshot file per system.
type Store struct {
	dir string
}

// Open prepares a store rooted at dir, creating the directory if
// needed. A Store is safe for concurrent use across systems — each
// system reads and writes only its own file.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("campaignstore: empty state directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaignstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Path returns the snapshot file for the named system.
func (s *Store) Path(system string) string {
	// System names are short identifiers; flatten anything that would
	// escape the state directory.
	safe := strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':':
			return '_'
		}
		return r
	}, system)
	return filepath.Join(s.dir, safe+".campaign.json")
}

// Load reads and validates the system's snapshot. It returns ErrNotExist
// when no snapshot was saved yet, ErrStale when the snapshot was written
// under a different schema fingerprint, and a descriptive error for a
// corrupt file. In every error case the returned snapshot is nil and the
// caller must run a full campaign — outcomes are never replayed from a
// snapshot that fails validation.
func (s *Store) Load(system string) (*Snapshot, error) {
	data, err := os.ReadFile(s.Path(system))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w for %s", ErrNotExist, system)
	}
	if err != nil {
		return nil, fmt.Errorf("campaignstore: %w", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("campaignstore: corrupt snapshot for %s: %w", system, err)
	}
	if snap.Schema != SchemaFingerprint() {
		return nil, fmt.Errorf("%w: snapshot %q, this build %q", ErrStale, snap.Schema, SchemaFingerprint())
	}
	if snap.System != system {
		return nil, fmt.Errorf("campaignstore: snapshot names system %q, want %q", snap.System, system)
	}
	if snap.Constraints == nil {
		return nil, fmt.Errorf("campaignstore: snapshot for %s has no constraint set", system)
	}
	if fp := snap.Constraints.Fingerprint(); fp != snap.SetFingerprint {
		return nil, fmt.Errorf("campaignstore: snapshot for %s fails its constraint fingerprint (%s != %s)",
			system, fp, snap.SetFingerprint)
	}
	return &snap, nil
}

// Save writes the snapshot atomically: the document lands in a
// temporary file in the state directory and is renamed over the final
// path, so a crash mid-write can never leave a half-written snapshot
// where Load would find it.
func (s *Store) Save(snap *Snapshot) error {
	data, err := json.MarshalIndent(snap, "", " ")
	if err != nil {
		return fmt.Errorf("campaignstore: %w", err)
	}
	final := s.Path(snap.System)
	tmp, err := os.CreateTemp(s.dir, filepath.Base(final)+".tmp-*")
	if err != nil {
		return fmt.Errorf("campaignstore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("campaignstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("campaignstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("campaignstore: %w", err)
	}
	return nil
}

// Status describes how one Campaign call used the store.
type Status struct {
	// Replayed reports that a valid snapshot was loaded and the run was
	// incremental.
	Replayed bool
	// Fallback explains why the run was a full campaign instead ("" when
	// Replayed). A plain first run reads "no snapshot (first run)".
	Fallback string
	// Retests is the number of misconfigurations the constraint delta
	// selected for re-execution (0 on a full campaign).
	Retests int
	// Saved reports that the updated snapshot was written back.
	Saved bool
	// Path is the snapshot file the run loaded from / saved to.
	Path string
}

// Campaign runs one system's injection campaign against the store: load
// the snapshot, Diff the stored constraint set against set (the fresh
// inference), re-execute only the delta-selected misconfigurations, and
// save the updated snapshot. When the snapshot is missing, fails
// validation, or was recorded under different outcome-affecting options
// (OptionsID), the campaign runs in full and the snapshot is rebuilt.
//
// Cancellation keeps the persisted state consistent: outcomes that
// errored, were cancelled mid-boot, or never started are never cached
// (the engine records only err-free results), so the snapshot saved
// after a cancelled run holds exactly the finished outcomes and the
// next run re-executes exactly the unfinished ones.
func Campaign(ctx context.Context, store *Store, sys sim.System, set *constraint.Set, ms []confgen.Misconf, opts inject.Options) (*inject.Report, Status, error) {
	st := Status{Path: store.Path(sys.Name())}
	cache := inject.NewResultCache()

	var rep *inject.Report
	var runErr error
	snap, err := store.Load(sys.Name())
	if err == nil && snap.Options != OptionsID(opts) {
		snap, err = nil, fmt.Errorf("campaign options changed (snapshot %q, this run %q)",
			snap.Options, OptionsID(opts))
	}
	if err == nil {
		cache.LoadSnapshot(snap.Outcomes)
		d := inject.Diff(snap.Constraints, set)
		retests := inject.SelectRetests(ms, d)
		st.Replayed = true
		st.Retests = len(retests)
		rep, runErr = inject.RunSelected(ctx, sys, ms, retests, cache, opts)
	} else {
		if errors.Is(err, ErrNotExist) {
			st.Fallback = "no snapshot (first run)"
		} else {
			st.Fallback = err.Error()
		}
		opts.Cache = cache
		rep, runErr = inject.RunContext(ctx, sys, ms, opts)
	}

	if rep != nil {
		// Save even after cancellation: the cache holds only finished
		// outcomes, so the next run resumes where this one stopped.
		if err := store.Save(New(sys.Name(), set, opts, cache.Snapshot())); err != nil {
			if runErr != nil {
				return rep, st, fmt.Errorf("%w (and saving the snapshot failed: %v)", runErr, err)
			}
			return rep, st, err
		}
		st.Saved = true
	}
	return rep, st, runErr
}
