// Package campaignstore persists SPEX-INJ campaign state across process
// runs, making the paper's "the campaign is a one-time cost" claim
// (§3.1) hold end to end: a snapshot records the inferred constraint
// set together with every recorded outcome, so the next run Diffs a
// fresh inference against the stored set and re-executes only the
// constraints the revision touched. Everything else replays from the
// snapshot at zero simulated cost.
//
// A snapshot is a versioned JSON document saved atomically (write to a
// temporary file, then rename) under a state directory, one file per
// target system. Loading is fail-safe: a missing, corrupt, truncated or
// schema-stale snapshot never replays outcomes — Load reports why, and
// the drivers fall back to a full campaign that rebuilds the snapshot.
//
// The schema fingerprint covers every encoding a snapshot depends on:
// the store's own layout version, the numeric values of the env-action
// kinds (embedded raw in inject.CacheKey), the reaction encoding
// (persisted inside each Outcome), and the constraint-kind encoding
// (behind constraint IDs and the diff). Renumbering any of them would
// silently remap old snapshots onto wrong meanings, so the fingerprint
// makes such snapshots stale instead.
package campaignstore

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"spex/internal/confgen"
	"spex/internal/constraint"
	"spex/internal/inject"
	"spex/internal/sim"
)

// SchemaVersion is the snapshot layout version. Bump it on any change
// to the Snapshot structure or the meaning of its fields; old snapshots
// then fail safe into a full campaign.
//
// v2 added per-outcome freshness stamps (Snapshot.Stamps) so a sharded
// campaign's merge resolves duplicate keys by when each outcome was
// actually established, not by whole-snapshot save time.
const SchemaVersion = 2

var (
	// ErrNotExist reports that no snapshot has been saved for the system
	// yet — the normal first-run condition.
	ErrNotExist = errors.New("campaignstore: no snapshot")
	// ErrStale reports that a snapshot exists but was written under a
	// different schema fingerprint and must not be replayed.
	ErrStale = errors.New("campaignstore: snapshot schema is stale")
)

// SchemaFingerprint identifies the encodings this build persists. A
// snapshot whose fingerprint differs was written by an incompatible
// build and is treated as stale.
func SchemaFingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "campaignstore schema v%d\n", SchemaVersion)
	// CacheKey embeds raw env-action kind values; renumbering the iota
	// must invalidate old snapshots.
	fmt.Fprintf(h, "env-kinds OccupyPort=%d MakeDir=%d MakeUnreadable=%d EnsureMissing=%d\n",
		confgen.EnvOccupyPort, confgen.EnvMakeDir, confgen.EnvMakeUnreadable, confgen.EnvEnsureMissing)
	// Reactions are persisted as integers inside each Outcome.
	for r := inject.ReactionCrash; r <= inject.ReactionTolerated; r++ {
		fmt.Fprintf(h, "reaction %d=%s\n", int(r), r)
	}
	// Constraint kinds sit behind both constraint identity and the diff.
	for k := constraint.KindBasicType; k <= constraint.KindValueRel; k++ {
		fmt.Fprintf(h, "kind %d=%s\n", int(k), k)
	}
	return fmt.Sprintf("v%d-%s", SchemaVersion, hex.EncodeToString(h.Sum(nil))[:16])
}

// Snapshot is one system's persisted campaign state.
type Snapshot struct {
	// Schema is the writing build's SchemaFingerprint.
	Schema string `json:"schema"`
	// System is the target system's name.
	System string `json:"system"`
	// SavedAt records when the snapshot was written.
	SavedAt time.Time `json:"saved_at"`
	// Options identifies the campaign options the outcomes were recorded
	// under (OptionsID). A run with different outcome-affecting options
	// must not replay them — e.g. a -no-optimizations run measures
	// different SimCost/FailedTest data than an optimized one.
	Options string `json:"options"`
	// SetFingerprint is Constraints.Fingerprint() at save time, both a
	// corruption guard and a cheap "did anything change?" signal.
	SetFingerprint string `json:"set_fingerprint"`
	// Constraints is the inferred constraint set the outcomes were
	// recorded under; a fresh inference run is Diffed against it.
	Constraints *constraint.Set `json:"constraints"`
	// Outcomes holds every recorded outcome keyed by inject.CacheKey.
	Outcomes map[string]inject.Outcome `json:"outcomes"`
	// Stamps records, per outcome key, when that outcome was last
	// executed or re-validated against the current constraint set. A
	// snapshot's own save time says nothing per key once shards carry
	// their peers' outcomes through a save (shard.Workload.Keep): a
	// carried copy keeps its original stamp, so the shard merge's
	// freshest-wins resolution never lets a stale carried copy beat the
	// owning shard's genuinely fresher retest. Keys missing a stamp
	// default to SavedAt on load.
	Stamps map[string]time.Time `json:"stamps,omitempty"`
}

// Fingerprint hashes the snapshot's replay-relevant content: the schema
// fingerprint, system, options identity, constraint-set fingerprint,
// and every outcome keyed by inject.CacheKey — but not SavedAt. Two
// snapshots that would replay identically fingerprint identically, so
// a sharded campaign's merged store can be checked byte-for-byte
// equivalent to an unsharded run's (internal/shard's acceptance test).
func (s *Snapshot) Fingerprint() (string, error) {
	fp := NewFingerprinter(s.Schema, s.System, s.Options, s.SetFingerprint)
	keys := make([]string, 0, len(s.Outcomes))
	for k := range s.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		data, err := json.Marshal(s.Outcomes[k])
		if err != nil {
			return "", fmt.Errorf("campaignstore: %w", err)
		}
		if err := fp.Add(k, data); err != nil {
			return "", err
		}
	}
	return fp.Sum(), nil
}

// OptionsID renders the outcome-affecting campaign options as a stable
// identity string. Scheduling knobs (Workers, Progress, SimCostDelay,
// Cache) are excluded — they change how outcomes are measured, not what
// is measured.
func OptionsID(opts inject.Options) string {
	hang := opts.HangDeadline
	if hang == 0 {
		hang = inject.DefaultHangDeadline // what RunContext will apply
	}
	return fmt.Sprintf("stop-on-first=%v sort-tests=%v hang=%s keep-all-logs=%v",
		opts.StopOnFirstFailure, opts.SortTests, hang, opts.KeepAllLogs)
}

// New assembles a snapshot for the system from the constraint set and
// campaign options the outcomes were recorded under and the result
// cache's exported entries. Every outcome is stamped with the save
// time — correct for a run that executed or re-validated its whole key
// set; a caller carrying peer outcomes through the save (the shard
// layer) overrides the carried keys' stamps afterwards.
func New(system string, set *constraint.Set, opts inject.Options, outcomes map[string]inject.Outcome) *Snapshot {
	now := time.Now().UTC()
	stamps := make(map[string]time.Time, len(outcomes))
	for k := range outcomes {
		stamps[k] = now
	}
	return &Snapshot{
		Schema:         SchemaFingerprint(),
		System:         system,
		SavedAt:        now,
		Options:        OptionsID(opts),
		SetFingerprint: set.Fingerprint(),
		Constraints:    set,
		Outcomes:       outcomes,
		Stamps:         stamps,
	}
}

// Store is a state directory holding one snapshot file per system.
type Store struct {
	dir string
}

// Open prepares a store rooted at dir, creating the directory if
// needed. A Store is safe for concurrent use across systems — each
// system reads and writes only its own file.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("campaignstore: empty state directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaignstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Snapshot file suffixes: snapSuffix is the binary container Save
// writes; legacySuffix is the v2 JSON document format, still readable
// so a JSON-era store loads transparently and migrates on its next
// save.
const (
	snapSuffix   = ".campaign.snap"
	legacySuffix = ".campaign.json"
)

// legacyJSONEnv, when set non-empty, makes Save write the legacy v2
// JSON document instead of the binary container — the escape hatch CI
// uses to manufacture JSON-era stores for migration coverage.
const legacyJSONEnv = "SPEX_SNAPSHOT_JSON"

// safeName flattens a system name into a file-name-safe base.
func safeName(system string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':':
			return '_'
		}
		return r
	}, system)
}

// Path returns the snapshot file for the named system (the binary
// container). A store written by a pre-binary build keeps its snapshot
// at LegacyPath until the next save migrates it.
func (s *Store) Path(system string) string {
	// System names are short identifiers; flatten anything that would
	// escape the state directory.
	return filepath.Join(s.dir, safeName(system)+snapSuffix)
}

// LegacyPath returns the system's v2 JSON snapshot file.
func (s *Store) LegacyPath(system string) string {
	return filepath.Join(s.dir, safeName(system)+legacySuffix)
}

// decodeSnapshot unmarshals and validates one snapshot document — the
// shared half of Load and LoadAll. label names the source in errors.
// The format is sniffed from the content, not the file name: binary
// containers open with the magic, anything else decodes as the legacy
// v2 JSON document.
func decodeSnapshot(data []byte, label string) (*Snapshot, error) {
	if bytes.HasPrefix(data, snapMagic) {
		return decodeBinarySnapshot(data, label)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("campaignstore: corrupt snapshot for %s: %w", label, err)
	}
	if snap.Schema != SchemaFingerprint() {
		return nil, fmt.Errorf("%w: snapshot %q, this build %q", ErrStale, snap.Schema, SchemaFingerprint())
	}
	if snap.Constraints == nil {
		return nil, fmt.Errorf("campaignstore: snapshot for %s has no constraint set", label)
	}
	if fp := snap.Constraints.Fingerprint(); fp != snap.SetFingerprint {
		return nil, fmt.Errorf("campaignstore: snapshot for %s fails its constraint fingerprint (%s != %s)",
			label, fp, snap.SetFingerprint)
	}
	// Outcomes missing a per-key stamp inherit the snapshot save time —
	// the pre-Stamps freshness granularity.
	if snap.Stamps == nil {
		snap.Stamps = make(map[string]time.Time, len(snap.Outcomes))
	}
	for k := range snap.Outcomes {
		if _, ok := snap.Stamps[k]; !ok {
			snap.Stamps[k] = snap.SavedAt
		}
	}
	return &snap, nil
}

// Load reads and validates the system's snapshot. It returns ErrNotExist
// when no snapshot was saved yet, ErrStale when the snapshot was written
// under a different schema fingerprint, and a descriptive error for a
// corrupt file. In every error case the returned snapshot is nil and the
// caller must run a full campaign — outcomes are never replayed from a
// snapshot that fails validation.
func (s *Store) Load(system string) (*Snapshot, error) {
	start := time.Now()
	snap, err := s.load(system)
	switch {
	case err == nil:
		mLoads.Inc()
		mLoadSeconds.Observe(time.Since(start).Seconds())
	case !errors.Is(err, ErrNotExist):
		mLoadErrors.Inc()
	}
	return snap, err
}

func (s *Store) load(system string) (*Snapshot, error) {
	data, err := os.ReadFile(s.Path(system))
	if errors.Is(err, os.ErrNotExist) {
		// A store written by a pre-binary build keeps its snapshot at the
		// legacy JSON path until the next save migrates it.
		data, err = os.ReadFile(s.LegacyPath(system))
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w for %s", ErrNotExist, system)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("campaignstore: %w", err)
	}
	snap, err := decodeSnapshot(data, system)
	if err != nil {
		return nil, err
	}
	if snap.System != system {
		return nil, fmt.Errorf("campaignstore: snapshot names system %q, want %q", snap.System, system)
	}
	return snap, nil
}

// LoadAll reads and validates every snapshot in the store in one pass,
// sorted by system name — the shard-merge path, which needs the full
// documents and must not parse each file twice (once to list, once to
// load). Unlike List it is strict: an unreadable, corrupt, stale, or
// misfiled snapshot fails the whole call, because a merge must never
// silently skip a shard's data.
func (s *Store) LoadAll() ([]*Snapshot, error) {
	names, err := s.snapshotFiles()
	if err != nil {
		return nil, err
	}
	var snaps []*Snapshot
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			return nil, fmt.Errorf("campaignstore: %w", err)
		}
		snap, err := decodeSnapshot(data, name)
		if err != nil {
			return nil, err
		}
		base := safeName(snap.System)
		if name != base+snapSuffix && name != base+legacySuffix {
			return nil, fmt.Errorf("campaignstore: %s names system %q, which belongs in %s",
				name, snap.System, base+snapSuffix)
		}
		snaps = append(snaps, snap)
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].System < snaps[j].System })
	return snaps, nil
}

// snapshotFiles lists the store's snapshot file names, one per system
// base. When both a binary and a legacy JSON file exist for the same
// base (only transiently possible — Save removes the legacy file after
// a successful migration), the binary one wins.
func (s *Store) snapshotFiles() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("campaignstore: %w", err)
	}
	binaries := map[string]bool{}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), snapSuffix) {
			binaries[strings.TrimSuffix(e.Name(), snapSuffix)] = true
		}
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch {
		case strings.HasSuffix(e.Name(), snapSuffix):
			names = append(names, e.Name())
		case strings.HasSuffix(e.Name(), legacySuffix):
			if !binaries[strings.TrimSuffix(e.Name(), legacySuffix)] {
				names = append(names, e.Name())
			}
		}
	}
	return names, nil
}

// Save writes the snapshot atomically: the binary container streams
// outcome-by-outcome into a temporary file in the state directory, is
// fsynced, and is renamed over the final path. The fsync before the
// rename matters as much as the rename itself: without it a crash
// shortly after Save could leave the rename durable but the data not,
// and Load would find a zero-length snapshot at the final path on every
// subsequent run. With it, the final path only ever holds a complete
// document (or the previous one).
//
// A successful save also migrates a JSON-era store (the legacy v2
// document is removed once the binary file is in place) and rebuilds
// the system's outcome-index sidecar, so the daemon's read path never
// re-parses what was just written. Setting SPEX_SNAPSHOT_JSON=1 writes
// the legacy JSON document instead (migration test coverage).
//
// Save lives on *Lock, not *Store: the held writer lock is the one
// capability for snapshot writes, so the "lock before you write" rule
// is a type-system fact instead of a convention (and spexlint's
// lockcontract analyzer can check the acquisition side).
func (l *Lock) Save(snap *Snapshot) error { return l.store.save(snap) }

func (s *Store) save(snap *Snapshot) error {
	start := time.Now()
	legacy := os.Getenv(legacyJSONEnv) != ""
	var err error
	if legacy {
		err = s.saveLegacyJSON(snap)
	} else {
		err = s.saveBinary(snap)
	}
	if err != nil {
		mSaveErrors.Inc()
		return err
	}
	mSaves.Inc()
	mSaveSeconds.Observe(time.Since(start).Seconds())
	path := s.Path(snap.System)
	if legacy {
		path = s.LegacyPath(snap.System)
	}
	if fi, statErr := os.Stat(path); statErr == nil {
		mSnapshotBytes.Observe(float64(fi.Size()))
	}
	return nil
}

func (s *Store) saveBinary(snap *Snapshot) error {
	w, err := s.newStreamWriter(snap)
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(snap.Outcomes))
	for k := range snap.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		stamp := snap.Stamps[k]
		if stamp.IsZero() {
			stamp = snap.SavedAt
		}
		if err := w.Add(k, stamp, snap.Outcomes[k]); err != nil {
			w.Abort()
			return err
		}
	}
	_, err = w.Close()
	return err
}

// saveLegacyJSON is the pre-binary Save: the whole snapshot as one
// indented JSON document at the legacy path. Kept (behind
// SPEX_SNAPSHOT_JSON) so migration tests can manufacture JSON-era
// stores with exactly the old writer.
func (s *Store) saveLegacyJSON(snap *Snapshot) error {
	data, err := json.MarshalIndent(snap, "", " ")
	if err != nil {
		return fmt.Errorf("campaignstore: %w", err)
	}
	final := s.LegacyPath(snap.System)
	tmp, err := os.CreateTemp(s.dir, filepath.Base(final)+".tmp-*")
	if err != nil {
		return fmt.Errorf("campaignstore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("campaignstore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("campaignstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("campaignstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("campaignstore: %w", err)
	}
	// Make the rename itself durable. Directory fsync is best-effort:
	// not every platform supports it, and the data fsync above already
	// rules out the dangerous half (durable rename, lost data).
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	// A JSON-era writer supersedes any binary file for the system. This
	// removal must not be best-effort: Load prefers the binary path, so
	// a surviving stale binary would silently shadow the save we just
	// made durable.
	if err := os.Remove(s.Path(snap.System)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("campaignstore: removing superseded binary snapshot: %w", err)
	}
	// The index sidecar is derived data keyed by the snapshot's stat
	// identity — a stale one fails validation and rebuilds — so its
	// removal genuinely is best-effort.
	_ = os.Remove(s.IndexPath(snap.System))
	return nil
}

// WriteJSON persists an advisory JSON document atomically: marshalled
// with indentation, written to a temp file in the target's directory,
// and renamed into place, so a concurrent reader never sees a torn
// document. This is the write path for the coordination and service
// files that live beside the snapshots (leases, heartbeats, the
// daemon's job journal) — unlike Save there is no fsync, because the
// snapshots carry the real outcomes and these documents are
// reconstructible bookkeeping.
func WriteJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return fmt.Errorf("campaignstore: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("campaignstore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("campaignstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("campaignstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("campaignstore: %w", err)
	}
	return nil
}

// List returns the name of every system with a snapshot in the store,
// sorted. File names are flattened (Path), so the name is read from
// each snapshot document; files that do not minimally parse are
// skipped — Load will report them properly when asked.
func (s *Store) List() ([]string, error) {
	names, err := s.snapshotFiles()
	if err != nil {
		return nil, err
	}
	var systems []string
	for _, name := range names {
		system, err := readSystemName(filepath.Join(s.dir, name))
		if err != nil || system == "" {
			continue
		}
		systems = append(systems, system)
	}
	sort.Strings(systems)
	return systems, nil
}

// readSystemName extracts the system name from a snapshot file as
// cheaply as the format allows: a binary container yields it from the
// header frame without touching the outcome records; a legacy JSON
// document must be read whole.
func readSystemName(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	magic := make([]byte, len(snapMagic))
	if n, _ := io.ReadFull(f, magic); n == len(snapMagic) && bytes.Equal(magic, snapMagic) {
		br := bufio.NewReader(f)
		blobLen, err := binary.ReadUvarint(br)
		if err != nil || blobLen > maxFrameLen {
			return "", fmt.Errorf("campaignstore: corrupt header in %s", path)
		}
		head := make([]byte, blobLen)
		if _, err := io.ReadFull(br, head); err != nil {
			return "", fmt.Errorf("campaignstore: corrupt header in %s", path)
		}
		var hdr struct {
			System string `json:"system"`
		}
		if err := json.Unmarshal(head, &hdr); err != nil {
			return "", err
		}
		return hdr.System, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var head struct {
		System string `json:"system"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return "", err
	}
	return head.System, nil
}

// lockName is the store's exclusive-writer mark. It does not end in
// .campaign.json, so List/LoadAll never mistake it for a snapshot. The
// same suffix names the per-system lock files (<system>.spex.lock), so
// a directory scan for held claims is one suffix match.
const lockName = ".spex.lock"

// LockPath returns the whole-directory writer-lock file guarding a
// state directory — the one place the lock file's name is spelled
// (SystemLockPath derives the per-system spelling from it). Callers
// that need to observe the lock from outside (tests asserting a clean
// release, operator tooling deciding whether a directory is claimed) go
// through this instead of hard-coding the name; spexlint's lockcontract
// analyzer flags the literal anywhere outside this package.
func LockPath(dir string) string { return filepath.Join(dir, lockName) }

// SystemLockPath returns the per-system writer-lock file for one
// system's snapshot in a state directory. The name is the flattened
// system name plus the same .spex.lock suffix as the directory lock,
// e.g. proxyd.spex.lock.
func SystemLockPath(dir, system string) string {
	return filepath.Join(dir, safeName(system)+lockName)
}

// LockStaleAfter bounds how long an unrefreshed lock is honored: a
// live holder re-stamps its lock file's mtime every quarter of this
// interval, so a lock whose mtime is older than this belongs to a
// holder that stopped existing without unlocking — crashed, powered
// off, or its PID recycled by an unrelated process (which a liveness
// probe cannot distinguish from the real holder). For foreign hosts
// the mtime age is the only staleness signal; on the same host a dead
// PID is stale immediately. Long campaigns are safe at any duration:
// the refresh keeps a live holder's lock fresh forever.
var LockStaleAfter = 4 * time.Hour

// lockInfo is the lock file's JSON payload, enough to decide staleness
// and to name the holder in the conflict error.
type lockInfo struct {
	PID        int       `json:"pid"`
	Host       string    `json:"host"`
	AcquiredAt time.Time `json:"acquired_at"`
}

// claim is one held on-disk lock file: the hard-link acquisition, the
// background refresher that keeps its mtime fresh, and the
// successor-safe release. The whole-directory Lock and the per-system
// SystemLock are both claims — only their scope (and therefore which
// writes they authorize) differs.
type claim struct {
	path string
	pid  int
	host string
	stop chan struct{}
	done chan struct{}
}

// acquire claims path: a lock file naming this process, created
// atomically with its payload (hard-linked into place). what names the
// claimed resource in the conflict error.
//
// The claim must be atomic WITH its payload: an O_EXCL create followed
// by a write would expose an empty lock file, which a concurrent
// acquire would read as unparsable, deem stale, and delete — two racing
// starts would both "win". Writing the payload to a temp file and
// hard-linking it into place makes the lock appear fully formed or not
// at all.
//
// Takeover is automatic for stale locks: a same-host holder that is no
// longer alive, an unreadable lock file, or any lock left unrefreshed
// for LockStaleAfter. (Two processes racing the same takeover leave a
// tiny window in which both can think they won; the snapshot layer
// stays consistent even then — saves are atomic and the shard merge
// resolves duplicates freshest-wins — the lock exists to make the race
// loud and rare, not to be a distributed consensus protocol.)
func acquire(dir, path, what string) (*claim, error) {
	host, _ := os.Hostname()
	data, err := json.Marshal(lockInfo{PID: os.Getpid(), Host: host, AcquiredAt: time.Now().UTC()})
	if err != nil {
		return nil, fmt.Errorf("campaignstore: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("campaignstore: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return nil, fmt.Errorf("campaignstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return nil, fmt.Errorf("campaignstore: %w", err)
	}
	for attempt := 0; attempt < 2; attempt++ {
		err := os.Link(tmp.Name(), path)
		if err == nil {
			c := &claim{path: path, pid: os.Getpid(), host: host,
				stop: make(chan struct{}), done: make(chan struct{})}
			go c.refresh()
			return c, nil
		}
		if !errors.Is(err, os.ErrExist) {
			return nil, fmt.Errorf("campaignstore: %w", err)
		}
		holder, stale := readLock(path)
		if !stale {
			return nil, fmt.Errorf(
				"campaignstore: %s is locked by pid %d on %s since %s (another campaign is writing this state; remove %s to force)",
				what, holder.PID, holder.Host, holder.AcquiredAt.Format(time.RFC3339), path)
		}
		// Stale: take it over and retry the exclusive link once.
		if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("campaignstore: %w", err)
		}
	}
	return nil, fmt.Errorf("campaignstore: lost the takeover race for %s", path)
}

// refresh re-stamps the lock file's mtime while the claim is held, so
// the staleness age bound distinguishes a live long-running holder
// (fresh mtime) from one that ceased to exist without unlocking (mtime
// frozen at its last heartbeat). Ownership is re-checked before every
// stamp: after a (documented, tiny-window) takeover race the file is
// someone else's, and refreshing it would keep their successor's lock
// alive past its own death.
func (c *claim) refresh() {
	defer close(c.done)
	ticker := time.NewTicker(LockStaleAfter / 4)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		var info lockInfo
		data, err := os.ReadFile(c.path)
		if err != nil || json.Unmarshal(data, &info) != nil ||
			info.PID != c.pid || info.Host != c.host {
			continue // gone or taken over: nothing of ours to refresh
		}
		now := time.Now()
		_ = os.Chtimes(c.path, now, now)
	}
}

// release removes the lock file — but only if it still names this
// process. After a stale takeover the file belongs to the successor;
// removing it unconditionally would strip the successor's protection
// and reopen the silent save race for a third writer. Releasing twice
// is harmless.
func (c *claim) release() error {
	if c.stop != nil {
		select {
		case <-c.stop:
		default:
			close(c.stop)
			<-c.done
		}
	}
	var info lockInfo
	data, err := os.ReadFile(c.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("campaignstore: %w", err)
	}
	if json.Unmarshal(data, &info) == nil && (info.PID != c.pid || info.Host != c.host) {
		return nil // taken over: the file is the successor's now
	}
	if err := os.Remove(c.path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("campaignstore: %w", err)
	}
	return nil
}

// heldByUs reports whether the lock file at path names this process on
// this host and is not stale — the multi-granularity exemption check.
func heldByUs(path string) bool {
	info, stale := readLock(path)
	if stale {
		return false
	}
	host, _ := os.Hostname()
	return info.PID == os.Getpid() && info.Host == host
}

// Lock is a held whole-directory writer lock; Unlock releases it.
// While held, a background refresher re-stamps the lock file so the
// staleness age bound never evicts a live holder.
//
// The handle is also the write capability: Save and NewStreamWriter
// live on *Lock, so holding the lock is not merely advisory — code
// that never acquired it cannot reach the snapshot-write path at all.
// Read-side methods (Load, List, Prepare, LoadIndex, ...) stay on
// *Store, because the read path is designed to be lock-free.
//
// The directory lock is the coarse end of a two-level hierarchy: it
// covers every system at once and is the right scope for the CLIs (one
// process, the whole campaign). The fine end is SystemLock, the
// per-system write capability the daemon's scheduler claims so jobs
// over disjoint systems can write concurrently. The two levels exclude
// each other across processes — Lock refuses while any live foreign
// per-system claim exists, LockSystem refuses under a live foreign
// directory lock — but one process may claim per-system locks under
// its own directory lock (intent-exclusive dir + exclusive system),
// which is how the daemon nests job claims under its namespace lock.
type Lock struct {
	store *Store
	c     *claim
}

// Store returns the store this lock guards — the handle back to the
// read-side API for callers handed only the write capability.
func (l *Lock) Store() *Store { return l.store }

// Lock acquires the store's exclusive whole-directory writer lock. Two
// processes writing the same state directory would otherwise silently
// race their temp+rename saves — each save is atomic, but the last
// writer's snapshot wins wholesale and the loser's outcomes are gone.
// With the lock the second writer fails fast with a descriptive error
// instead. Acquisition and staleness takeover semantics are acquire's.
//
// A live per-system claim by another process refuses the directory
// lock: the fine-grained writers hold real capabilities the coarse
// lock must not trample. (The check-then-claim window is the same
// loud-and-rare compromise as the takeover race.)
//
// The coordinator's lease layer (internal/coord) reuses this lock: the
// coordinator locks the campaign root and every shard worker locks its
// own shard directory.
func (s *Store) Lock() (*Lock, error) {
	if held, err := s.liveSystemLocks(); err != nil {
		return nil, err
	} else if len(held) > 0 {
		return nil, fmt.Errorf(
			"campaignstore: %s has live per-system locks (%s); a whole-directory lock cannot coexist with them",
			s.dir, strings.Join(held, ", "))
	}
	c, err := acquire(s.dir, filepath.Join(s.dir, lockName), s.dir)
	if err != nil {
		return nil, err
	}
	return &Lock{store: s, c: c}, nil
}

// liveSystemLocks scans the directory for per-system lock files whose
// holders are still live, returning the claimed system file stems.
func (s *Store) liveSystemLocks() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("campaignstore: %w", err)
	}
	var held []string
	for _, e := range entries {
		name := e.Name()
		if name == lockName || !strings.HasSuffix(name, lockName) {
			continue
		}
		if _, stale := readLock(filepath.Join(s.dir, name)); !stale {
			held = append(held, strings.TrimSuffix(name, lockName))
		}
	}
	return held, nil
}

// readLock reads the lock file and decides staleness. A missing or
// unreadable file is stale (the next exclusive-link attempt
// arbitrates).
func readLock(path string) (lockInfo, bool) {
	var info lockInfo
	data, err := os.ReadFile(path)
	if err != nil || json.Unmarshal(data, &info) != nil || info.PID == 0 {
		return info, true
	}
	if fi, err := os.Stat(path); err == nil && time.Since(fi.ModTime()) > LockStaleAfter {
		// The holder stopped re-stamping the file LockStaleAfter ago:
		// whatever the PID probe would say (a recycled PID reads as
		// alive), the campaign that took this lock is gone.
		return info, true
	}
	host, _ := os.Hostname()
	if info.Host == host {
		// Same host: probe the holder directly. Signal 0 delivers
		// nothing; it only reports whether the process exists. EPERM
		// means the process exists but belongs to another user — a
		// live holder, not a stale one.
		p, err := os.FindProcess(info.PID)
		if err != nil {
			return info, true
		}
		sigErr := p.Signal(syscall.Signal(0))
		return info, sigErr != nil && !errors.Is(sigErr, syscall.EPERM)
	}
	return info, false
}

// Unlock releases the directory lock (successor-safe, see
// claim.release).
func (l *Lock) Unlock() error { return l.c.release() }

// Set returns the whole-directory lock viewed as a per-system lock
// set covering every system in the store. Unlock on the view is a
// no-op — the directory Lock owns its own release — so the CLIs can
// keep their one-lock lifecycle and still feed the per-system API.
func (l *Lock) Set() *LockSet { return &LockSet{store: l.store, dir: l} }

// SystemLock is a held per-system writer lock: the only write
// capability for that system's snapshot. It carries the same atomic
// hard-link claim, mtime refresh, and stale-takeover semantics as the
// whole-directory Lock, scoped to one snapshot file. Save and
// NewStreamWriter refuse snapshots for any other system, so the
// capability cannot be laundered across systems.
//
// A SystemLock minted from a whole-directory Lock (Lock.Set) has no
// claim of its own; its Unlock is a no-op and the directory lock keeps
// covering it.
type SystemLock struct {
	store  *Store
	system string
	c      *claim // nil for a view minted from a whole-directory Lock
}

// Store returns the store this lock guards.
func (l *SystemLock) Store() *Store { return l.store }

// System returns the system name this lock covers.
func (l *SystemLock) System() string { return l.system }

// Unlock releases the per-system claim (successor-safe). A view minted
// from a whole-directory lock releases nothing.
func (l *SystemLock) Unlock() error {
	if l.c == nil {
		return nil
	}
	return l.c.release()
}

// Save writes the snapshot through the per-system capability. The
// snapshot's system must match the lock's scope.
func (l *SystemLock) Save(snap *Snapshot) error {
	if snap.System != l.system {
		return fmt.Errorf("campaignstore: lock scoped to system %q cannot save a snapshot for %q", l.system, snap.System)
	}
	return l.store.save(snap)
}

// LockSystem acquires the exclusive per-system writer lock for one
// system's snapshot. A live whole-directory lock held by another
// process refuses the claim — but this process's own directory lock is
// exempt: holding the coarse lock and claiming fine locks under it is
// the intent-exclusive pattern the daemon's scheduler uses to run
// disjoint-system jobs concurrently inside one locked namespace.
func (s *Store) LockSystem(system string) (*SystemLock, error) {
	dirPath := filepath.Join(s.dir, lockName)
	if info, stale := readLock(dirPath); !stale && !heldByUs(dirPath) {
		return nil, fmt.Errorf(
			"campaignstore: %s is locked whole-directory by pid %d on %s since %s; a per-system lock cannot coexist with it",
			s.dir, info.PID, info.Host, info.AcquiredAt.Format(time.RFC3339))
	}
	c, err := acquire(s.dir, SystemLockPath(s.dir, system), fmt.Sprintf("system %q in %s", system, s.dir))
	if err != nil {
		return nil, err
	}
	return &SystemLock{store: s, system: system, c: c}, nil
}

// LockSystems claims the per-system locks for every named system,
// all-or-nothing: systems are claimed in sorted order (a global order
// prevents two claimants deadlocking each other's partial sets), and
// any failure releases what was already claimed. Duplicates collapse.
func (s *Store) LockSystems(systems ...string) (*LockSet, error) {
	names := append([]string(nil), systems...)
	sort.Strings(names)
	ls := &LockSet{store: s, locks: make(map[string]*SystemLock, len(names))}
	for _, name := range names {
		if _, ok := ls.locks[name]; ok {
			continue
		}
		l, err := s.LockSystem(name)
		if err != nil {
			_ = ls.Unlock()
			return nil, err
		}
		ls.locks[name] = l
		ls.order = append(ls.order, name)
	}
	return ls, nil
}

// LockSet is a bundle of per-system write capabilities over one store —
// what the pipeline layers (shard.CampaignAll, shard.Merge, coord,
// report) thread instead of the directory lock. It comes in two
// flavors: a restricted set from Store.LockSystems, which covers
// exactly the claimed systems and errors on any other; and a
// whole-directory view from Lock.Set, which covers every system under
// the directory lock's protection.
type LockSet struct {
	store *Store
	dir   *Lock                  // non-nil for a whole-directory view
	locks map[string]*SystemLock // restricted set, keyed by system
	order []string               // claim order (sorted system names)
}

// Store returns the store the set writes to.
func (ls *LockSet) Store() *Store { return ls.store }

// Covers reports whether the set can mint a write capability for the
// system.
func (ls *LockSet) Covers(system string) bool {
	if ls.dir != nil {
		return true
	}
	_, ok := ls.locks[system]
	return ok
}

// Systems lists the systems a restricted set explicitly covers, in
// claim order. A whole-directory view returns nil: it covers all of
// them.
func (ls *LockSet) Systems() []string { return append([]string(nil), ls.order...) }

// System returns the write capability for one system. A restricted set
// errors on a system it never claimed — the caller's workload leaked
// outside its declared lock scope, which must fail loudly rather than
// write unprotected.
func (ls *LockSet) System(system string) (*SystemLock, error) {
	if ls.dir != nil {
		return &SystemLock{store: ls.store, system: system}, nil
	}
	if l, ok := ls.locks[system]; ok {
		return l, nil
	}
	covered := strings.Join(ls.order, ", ")
	if covered == "" {
		covered = "nothing"
	}
	return nil, fmt.Errorf("campaignstore: no per-system lock held for %q (set covers %s)", system, covered)
}

// Save routes the snapshot to its system's write capability.
func (ls *LockSet) Save(snap *Snapshot) error {
	l, err := ls.System(snap.System)
	if err != nil {
		return err
	}
	return l.Save(snap)
}

// Unlock releases every per-system claim the set holds, returning the
// first error. A whole-directory view releases nothing — the directory
// Lock owns its own Unlock.
func (ls *LockSet) Unlock() error {
	var first error
	for _, name := range ls.order {
		if err := ls.locks[name].Unlock(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Status describes how one Campaign call used the store.
type Status struct {
	// Replayed reports that a valid snapshot was loaded and the run was
	// incremental.
	Replayed bool
	// Fallback explains why the run was a full campaign instead ("" when
	// Replayed). A plain first run reads "no snapshot (first run)".
	Fallback string
	// Retests is the number of misconfigurations the constraint delta
	// selected for re-execution (0 on a full campaign).
	Retests int
	// Saved reports that the updated snapshot was written back.
	Saved bool
	// Path is the snapshot file the run loaded from / saved to.
	Path string
}

// Prepare seeds cache for an incremental run of ms against the system's
// stored snapshot and returns the Status describing the decision: on a
// valid snapshot recorded under the same outcome-affecting options
// (OptionsID) the recorded outcomes load into the cache, the stored
// constraint set Diffs against set (the fresh inference), the
// delta-selected retests are evicted so they re-execute, and stale
// entries are pruned; on a missing, invalid, or options-mismatched
// snapshot the cache stays empty and Status.Fallback says why — the
// caller runs a full campaign either way, with the cache deciding what
// replays. This is the one copy of the snapshot-replay policy, shared
// by Campaign (per-system) and the global cross-target scheduler
// (internal/shard CampaignAll).
//
// keep lists cache keys outside ms that must survive the prune: a shard
// process running against a store that also holds its peers' outcomes
// (a merged store, or a full store being refreshed one shard at a time)
// must carry the other shards' work through its save, not discard it.
//
// The second return value holds the loaded snapshot's per-key freshness
// stamps (nil on fallback): a caller that carries keys through its save
// re-applies their original stamps so carried copies never masquerade
// as fresh.
func (s *Store) Prepare(system string, set *constraint.Set, ms []confgen.Misconf, opts inject.Options, keep map[string]bool, cache *inject.ResultCache) (Status, map[string]time.Time) {
	st := Status{Path: s.Path(system)}
	snap, err := s.Load(system)
	if err == nil && snap.Options != OptionsID(opts) {
		snap, err = nil, fmt.Errorf("campaign options changed (snapshot %q, this run %q)",
			snap.Options, OptionsID(opts))
	}
	if err != nil {
		if errors.Is(err, ErrNotExist) {
			st.Fallback = "no snapshot (first run)"
		} else {
			st.Fallback = err.Error()
		}
		mPrepareFallbacks.Inc()
		return st, nil
	}
	cache.LoadSnapshot(snap.Outcomes)
	d := inject.Diff(snap.Constraints, set)
	retests := inject.SelectRetests(ms, d)
	st.Replayed = true
	st.Retests = len(retests)
	mPrepareReplayed.Add(uint64(len(snap.Outcomes)))
	mPrepareRetests.Add(uint64(len(retests)))
	// The cache prep of inject.RunSelected: evict the delta so it
	// re-executes, prune entries that left the campaign — but never the
	// keys the caller vouched for.
	for _, m := range retests {
		cache.Delete(inject.CacheKey(m))
	}
	current := make(map[string]bool, len(ms)+len(keep))
	for _, m := range ms {
		current[inject.CacheKey(m)] = true
	}
	for k := range keep {
		current[k] = true
	}
	cache.Retain(current)
	return st, snap.Stamps
}

// Campaign runs one system's injection campaign against the store: load
// the snapshot, Diff the stored constraint set against set (the fresh
// inference), re-execute only the delta-selected misconfigurations, and
// save the updated snapshot. When the snapshot is missing, fails
// validation, or was recorded under different outcome-affecting options
// (OptionsID), the campaign runs in full and the snapshot is rebuilt.
//
// Cancellation keeps the persisted state consistent: outcomes that
// errored, were cancelled mid-boot, or never started are never cached
// (the engine records only err-free results), so the snapshot saved
// after a cancelled run holds exactly the finished outcomes and the
// next run re-executes exactly the unfinished ones.
//
// The lock handle is the write capability (SystemLock.Save), so
// Campaign takes the held *SystemLock rather than a bare store — a
// caller cannot reach the snapshot save without having acquired the
// system's writer lock (or a whole-directory lock viewed through
// Lock.Set) first.
func Campaign(ctx context.Context, lock *SystemLock, sys sim.System, set *constraint.Set, ms []confgen.Misconf, opts inject.Options) (*inject.Report, Status, error) {
	cache := inject.NewResultCache()
	st, _ := lock.Store().Prepare(sys.Name(), set, ms, opts, nil, cache)
	opts.Cache = cache
	rep, runErr := inject.RunContext(ctx, sys, ms, opts)

	if rep != nil {
		// Save even after cancellation: the cache holds only finished
		// outcomes, so the next run resumes where this one stopped.
		if err := lock.Save(New(sys.Name(), set, opts, cache.Snapshot())); err != nil {
			if runErr != nil {
				return rep, st, fmt.Errorf("%w (and saving the snapshot failed: %v)", runErr, err)
			}
			return rep, st, err
		}
		st.Saved = true
	}
	return rep, st, runErr
}
