package campaignstore

import (
	"bytes"
	"context"
	"os"
	"reflect"
	"strings"
	"testing"

	"spex/internal/inject"
)

// fixtureOutcomes builds a deterministic outcome map large enough to
// exercise multi-record streaming.
func fixtureOutcomes(t *testing.T, n int) map[string]inject.Outcome {
	t.Helper()
	c := basicC("p")
	out := make(map[string]inject.Outcome, n)
	for i, m := range misconfs(c, n) {
		o := inject.Outcome{Misconf: m, Reaction: inject.Reaction(i % 4), SimCost: i, Pinpointed: i%2 == 0}
		if i%3 == 1 {
			o.FailedTest = "ping"
			o.LogDump = "ERR request failed\n"
		}
		out[inject.CacheKey(m)] = o
	}
	return out
}

func TestBinarySnapshotRoundTrip(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	set := mkSet(basicC("p"), rangeC("q", 1))
	outcomes := fixtureOutcomes(t, 24)
	snap := New("storefake", set, inject.DefaultOptions(), outcomes)
	wantFP, err := snap.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.save(snap); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(store.Path("storefake"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, snapMagic) {
		t.Fatalf("saved snapshot does not start with the binary magic: % x", data[:8])
	}
	if _, err := os.Stat(store.LegacyPath("storefake")); !os.IsNotExist(err) {
		t.Fatalf("binary save left a legacy JSON file: %v", err)
	}

	got, err := store.Load("storefake")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Outcomes, outcomes) {
		t.Fatal("binary round trip changed the outcome map")
	}
	if got.Schema != SchemaFingerprint() || got.Options != snap.Options ||
		got.SetFingerprint != set.Fingerprint() ||
		got.Constraints == nil || got.Constraints.Fingerprint() != set.Fingerprint() {
		t.Fatalf("header fields lost in round trip: %+v", got)
	}
	gotFP, err := got.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if gotFP != wantFP {
		t.Fatalf("fingerprint changed across the binary round trip: %s != %s", gotFP, wantFP)
	}
	// Stamps survive (Save stamps unstamped keys with SavedAt).
	for k := range outcomes {
		if got.Stamps[k].IsZero() {
			t.Fatalf("key %s lost its freshness stamp", k)
		}
	}
}

// TestLegacyJSONMigratesOnSave is the format-compat contract: a v2 JSON
// store (produced by the previous format via the SPEX_SNAPSHOT_JSON
// hatch) loads transparently, and the next save migrates it to the
// binary container with an identical snapshot fingerprint — migration
// never perturbs replay equivalence.
func TestLegacyJSONMigratesOnSave(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	set := mkSet(basicC("p"))
	outcomes := fixtureOutcomes(t, 12)

	t.Setenv(legacyJSONEnv, "1")
	if err := store.save(New("storefake", set, inject.DefaultOptions(), outcomes)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(store.LegacyPath("storefake")); err != nil {
		t.Fatalf("legacy hatch did not write the JSON file: %v", err)
	}
	if _, err := os.Stat(store.Path("storefake")); !os.IsNotExist(err) {
		t.Fatalf("legacy hatch wrote a binary file too: %v", err)
	}
	t.Setenv(legacyJSONEnv, "")

	// The JSON-era store loads transparently through the same API.
	snap, err := store.Load("storefake")
	if err != nil {
		t.Fatalf("legacy JSON store did not load: %v", err)
	}
	legacyFP, err := snap.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if names, err := store.List(); err != nil || len(names) != 1 || names[0] != "storefake" {
		t.Fatalf("List over a legacy store = %v, %v", names, err)
	}

	// Saving migrates: binary appears, the JSON file is removed, and
	// the fingerprint is bit-identical.
	if err := store.save(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(store.Path("storefake")); err != nil {
		t.Fatalf("migration did not write the binary file: %v", err)
	}
	if _, err := os.Stat(store.LegacyPath("storefake")); !os.IsNotExist(err) {
		t.Fatalf("migration left the legacy JSON file behind: %v", err)
	}
	migrated, err := store.Load("storefake")
	if err != nil {
		t.Fatal(err)
	}
	migratedFP, err := migrated.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if migratedFP != legacyFP {
		t.Fatalf("migration changed the snapshot fingerprint: %s != %s", migratedFP, legacyFP)
	}
	if !reflect.DeepEqual(migrated.Outcomes, snap.Outcomes) {
		t.Fatal("migration changed the outcome map")
	}
}

func TestCorruptBinarySnapshotRejected(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	set := mkSet(basicC("p"))
	if err := store.save(New("storefake", set, inject.DefaultOptions(), fixtureOutcomes(t, 12))); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(store.Path("storefake"))
	if err != nil {
		t.Fatal(err)
	}

	// Truncation at any depth must be loud, never a partial load.
	for _, cut := range []int{len(data) - 3, len(data) / 2, len(snapMagic) + 2} {
		if err := os.WriteFile(store.Path("storefake"), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Load("storefake"); err == nil || !strings.Contains(err.Error(), "corrupt") {
			t.Fatalf("truncation at %d loaded anyway: %v", cut, err)
		}
	}

	// A flipped bit in the record region fails the CRC (or an inner
	// frame check) — either way the load reports corruption.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-10] ^= 0xff
	if err := os.WriteFile(store.Path("storefake"), flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load("storefake"); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("bit flip loaded anyway: %v", err)
	}
}

// TestCampaignFallsBackOnCorruptBinary: the fail-safe semantics carry
// over from the JSON era — a truncated binary snapshot triggers a full
// campaign that rebuilds it, never a partial replay.
func TestCampaignFallsBackOnCorruptBinary(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sys := &storeSystem{}
	c := basicC("p")
	set := mkSet(c)
	ms := misconfs(c, 6)
	if _, _, err := Campaign(context.Background(), testWriter(store, sys.Name()), sys, set, ms, inject.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(store.Path(sys.Name()))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(store.Path(sys.Name()), data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	boots := sys.boots.Load()
	rep, st, err := Campaign(context.Background(), testWriter(store, sys.Name()), sys, set, ms, inject.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed || !strings.Contains(st.Fallback, "corrupt") {
		t.Fatalf("status = %+v, want corrupt-snapshot fallback", st)
	}
	if rep.Replayed != 0 {
		t.Fatalf("corrupt snapshot replayed %d outcomes", rep.Replayed)
	}
	if got := sys.boots.Load() - boots; got != 6 {
		t.Fatalf("fallback booted %d times, want the full 6", got)
	}
	if _, err := store.Load(sys.Name()); err != nil {
		t.Fatalf("snapshot not rebuilt after fallback: %v", err)
	}
}

// TestLoadIndexSidecar: a save writes the index sidecar; LoadIndex
// serves it while fresh and rebuilds (and rewrites it) when it is
// missing or stale.
func TestLoadIndexSidecar(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	set := mkSet(basicC("p"))
	outcomes := fixtureOutcomes(t, 18)
	snap := New("storefake", set, inject.DefaultOptions(), outcomes)
	if err := store.save(snap); err != nil {
		t.Fatal(err)
	}
	fp, err := snap.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(store.IndexPath("storefake")); err != nil {
		t.Fatalf("save did not write the index sidecar: %v", err)
	}

	idx, err := store.LoadIndex("storefake")
	if err != nil {
		t.Fatal(err)
	}
	if idx.System != "storefake" || idx.Fingerprint != fp || len(idx.Docs) != len(outcomes) {
		t.Fatalf("sidecar index wrong: system=%q fp=%s docs=%d", idx.System, idx.Fingerprint, len(idx.Docs))
	}

	// Deleting the sidecar forces a rebuild from the snapshot with the
	// same content, and the rebuild rewrites the sidecar.
	if err := os.Remove(store.IndexPath("storefake")); err != nil {
		t.Fatal(err)
	}
	rebuilt, err := store.LoadIndex("storefake")
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Fingerprint != fp || len(rebuilt.Docs) != len(idx.Docs) ||
		!reflect.DeepEqual(rebuilt.Agg, idx.Agg) {
		t.Fatal("rebuilt index differs from the sidecar index")
	}
	if _, err := os.Stat(store.IndexPath("storefake")); err != nil {
		t.Fatalf("rebuild did not rewrite the sidecar: %v", err)
	}

	// A sidecar whose recorded snapshot identity no longer matches is
	// stale: garbage in the file must never be served.
	if err := os.WriteFile(store.IndexPath("storefake"), []byte(`{"version":1,"snap":"other","sys":{"system":"storefake"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	again, err := store.LoadIndex("storefake")
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Docs) != len(outcomes) {
		t.Fatalf("stale sidecar served: %d docs, want %d", len(again.Docs), len(outcomes))
	}
}
