// Binary snapshot container: the storage format behind Save since the
// read-path refactor. The JSON document format (now "legacy v2") held
// every outcome in one json.MarshalIndent blob, so both ends of the
// pipeline were O(whole snapshot in RAM) and the daemon re-parsed
// megabytes per table request. The binary container is a stream of
// length-prefixed records:
//
//	magic "SPEXSNP1"
//	uvarint len | header JSON   (schema, system, saved_at, options,
//	                             set_fingerprint, constraints)
//	repeated records, in ascending key order:
//	  uvarint len(key) | key    (len > 0; inject.CacheKey)
//	  varint  stamp             (UnixNano of the outcome's freshness stamp)
//	  uvarint len | outcome JSON (compact json.Marshal of inject.Outcome)
//	uvarint 0                   (terminator)
//	uvarint record count
//	uint32  CRC-32 (IEEE, little-endian) of every preceding byte
//
// Records carry the outcome as compact JSON behind a binary frame: the
// frame is what buys streaming (read or write one outcome at a time,
// skip without parsing), and the payload bytes are exactly what
// Snapshot.Fingerprint hashes, so a streaming writer folds the
// fingerprint for free as records pass through. The ascending key order
// is load-bearing twice: it makes the fingerprint computable in one
// pass, and it lets shard.Merge fold k shard files with a k-way merge
// that holds one record per shard in memory.
//
// The logical schema (SchemaVersion, SchemaFingerprint) is unchanged by
// the container: a binary snapshot and its legacy JSON form carry the
// same schema fingerprint and the same Snapshot.Fingerprint, which is
// what lets a v2 JSON store migrate to binary on its next save without
// perturbing replay equivalence checks.
package campaignstore

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"time"

	"spex/internal/inject"
)

// snapMagic opens every binary snapshot file.
var snapMagic = []byte("SPEXSNP1")

// maxFrameLen bounds any single length prefix — a corrupt prefix must
// not turn into a multi-gigabyte allocation.
const maxFrameLen = 1 << 30

// Fingerprinter folds Snapshot.Fingerprint incrementally: the same hash
// as the in-memory method, computed record by record in ascending key
// order, so streaming writers (Save, shard.Merge) get the fingerprint
// as a byproduct of encoding instead of a second pass over the store.
type Fingerprinter struct {
	h       hash.Hash
	last    string
	started bool
}

// NewFingerprinter starts the hash with the snapshot's header lines.
func NewFingerprinter(schema, system, options, setFingerprint string) *Fingerprinter {
	h := sha256.New()
	fmt.Fprintf(h, "schema %s\nsystem %s\noptions %s\nset %s\n",
		schema, system, options, setFingerprint)
	return &Fingerprinter{h: h}
}

// Add folds one outcome record. outJSON must be the outcome's compact
// json.Marshal bytes; keys must arrive in strictly ascending order.
func (f *Fingerprinter) Add(key string, outJSON []byte) error {
	if f.started && key <= f.last {
		return fmt.Errorf("campaignstore: fingerprint keys out of order (%q after %q)", key, f.last)
	}
	f.started, f.last = true, key
	fmt.Fprintf(f.h, "outcome %d:%s %d:%s\n", len(key), key, len(outJSON), outJSON)
	return nil
}

// Sum returns the fingerprint accumulated so far.
func (f *Fingerprinter) Sum() string {
	return hex.EncodeToString(f.h.Sum(nil))[:32]
}

// snapshotHeader is the container's header blob — Snapshot minus the
// outcome records.
type snapshotHeader struct {
	Schema         string          `json:"schema"`
	System         string          `json:"system"`
	SavedAt        time.Time       `json:"saved_at"`
	Options        string          `json:"options"`
	SetFingerprint string          `json:"set_fingerprint"`
	Constraints    json.RawMessage `json:"constraints"`
}

// crcWriter folds everything written into a running CRC.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// SnapshotEncoder streams one snapshot into a writer: header first,
// then Add per outcome in ascending key order, then Finish. The encoder
// folds the container CRC and the snapshot fingerprint as records pass
// through, so the caller never holds more than one outcome in memory.
type SnapshotEncoder struct {
	bw      *bufio.Writer
	cw      *crcWriter
	fp      *Fingerprinter
	count   int
	last    string
	started bool
	scratch []byte
}

// NewSnapshotEncoder writes the magic and header. hdr carries the
// snapshot's metadata; its Outcomes/Stamps are ignored.
func NewSnapshotEncoder(w io.Writer, hdr *Snapshot) (*SnapshotEncoder, error) {
	rawSet, err := json.Marshal(hdr.Constraints)
	if err != nil {
		return nil, fmt.Errorf("campaignstore: %w", err)
	}
	head, err := json.Marshal(snapshotHeader{
		Schema:         hdr.Schema,
		System:         hdr.System,
		SavedAt:        hdr.SavedAt,
		Options:        hdr.Options,
		SetFingerprint: hdr.SetFingerprint,
		Constraints:    rawSet,
	})
	if err != nil {
		return nil, fmt.Errorf("campaignstore: %w", err)
	}
	cw := &crcWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	// The CRC must cover the buffered bytes in write order, so the CRC
	// sits *under* the bufio layer.
	e := &SnapshotEncoder{
		bw: bw,
		cw: cw,
		fp: NewFingerprinter(hdr.Schema, hdr.System, hdr.Options, hdr.SetFingerprint),
	}
	if _, err := bw.Write(snapMagic); err != nil {
		return nil, fmt.Errorf("campaignstore: %w", err)
	}
	if err := e.writeBlob(head); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *SnapshotEncoder) writeUvarint(v uint64) error {
	e.scratch = binary.AppendUvarint(e.scratch[:0], v)
	_, err := e.bw.Write(e.scratch)
	if err != nil {
		return fmt.Errorf("campaignstore: %w", err)
	}
	return nil
}

func (e *SnapshotEncoder) writeBlob(b []byte) error {
	if err := e.writeUvarint(uint64(len(b))); err != nil {
		return err
	}
	if _, err := e.bw.Write(b); err != nil {
		return fmt.Errorf("campaignstore: %w", err)
	}
	return nil
}

// Add appends one outcome record. Keys must be non-empty and strictly
// ascending — the order the fingerprint and the k-way merge depend on.
func (e *SnapshotEncoder) Add(key string, stamp time.Time, out inject.Outcome) error {
	if key == "" {
		return errors.New("campaignstore: empty outcome key")
	}
	if e.started && key <= e.last {
		return fmt.Errorf("campaignstore: outcome keys out of order (%q after %q)", key, e.last)
	}
	e.started, e.last = true, key
	data, err := json.Marshal(out)
	if err != nil {
		return fmt.Errorf("campaignstore: %w", err)
	}
	if err := e.fp.Add(key, data); err != nil {
		return err
	}
	if err := e.writeBlob([]byte(key)); err != nil {
		return err
	}
	e.scratch = binary.AppendVarint(e.scratch[:0], stamp.UnixNano())
	if _, err := e.bw.Write(e.scratch); err != nil {
		return fmt.Errorf("campaignstore: %w", err)
	}
	if err := e.writeBlob(data); err != nil {
		return err
	}
	e.count++
	return nil
}

// Finish writes the terminator, record count, and CRC trailer, flushes,
// and returns the snapshot fingerprint.
func (e *SnapshotEncoder) Finish() (string, error) {
	if err := e.writeUvarint(0); err != nil {
		return "", err
	}
	if err := e.writeUvarint(uint64(e.count)); err != nil {
		return "", err
	}
	if err := e.bw.Flush(); err != nil {
		return "", fmt.Errorf("campaignstore: %w", err)
	}
	// The trailer CRC covers everything up to itself; write it past the
	// CRC fold (directly, the buffer is flushed).
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], e.cw.crc)
	if _, err := e.cw.w.Write(tail[:]); err != nil {
		return "", fmt.Errorf("campaignstore: %w", err)
	}
	return e.fp.Sum(), nil
}

// crcStream folds the bytes the decoder *consumes* into a running CRC.
// The fold must sit above the bufio layer, not below it: bufio prefetches
// past the decoder's logical position, and a fold on the raw reader
// would swallow the trailer (and anything after it) ahead of time.
type crcStream struct {
	br  *bufio.Reader
	crc uint32
}

func (c *crcStream) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.crc = crc32.Update(c.crc, crc32.IEEETable, []byte{b})
	}
	return b, err
}

func (c *crcStream) Read(p []byte) (int, error) {
	n, err := c.br.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// SnapshotDecoder streams a binary snapshot: NewSnapshotDecoder
// validates the header (magic, schema staleness, constraint
// fingerprint — the same fail-safe checks as the JSON path), then Next
// yields one record at a time in ascending key order; after the last
// record the trailer's count and CRC are verified, so a truncated or
// bit-flipped file surfaces as an error before the caller trusts the
// stream was complete.
type SnapshotDecoder struct {
	s     *crcStream
	hdr   *Snapshot
	label string
	count int
	done  bool
	last  string
}

// corruptf builds the decoder's uniform corruption error.
func (d *SnapshotDecoder) corruptf(format string, args ...any) error {
	return fmt.Errorf("campaignstore: corrupt snapshot for %s: %s", d.label, fmt.Sprintf(format, args...))
}

// NewSnapshotDecoder reads and validates the container header. label
// names the source in errors. The reader must be positioned at the
// magic (callers sniff the first 8 bytes to pick binary vs JSON).
func NewSnapshotDecoder(r io.Reader, label string) (*SnapshotDecoder, error) {
	d := &SnapshotDecoder{s: &crcStream{br: bufio.NewReaderSize(r, 1<<16)}, label: label}
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(d.s, magic); err != nil || !bytes.Equal(magic, snapMagic) {
		return nil, d.corruptf("bad magic")
	}
	head, err := d.readBlob()
	if err != nil {
		return nil, err
	}
	var hdr snapshotHeader
	if err := json.Unmarshal(head, &hdr); err != nil {
		return nil, d.corruptf("header: %v", err)
	}
	snap := &Snapshot{
		Schema:         hdr.Schema,
		System:         hdr.System,
		SavedAt:        hdr.SavedAt,
		Options:        hdr.Options,
		SetFingerprint: hdr.SetFingerprint,
	}
	if len(hdr.Constraints) > 0 && !bytes.Equal(hdr.Constraints, []byte("null")) {
		if err := json.Unmarshal(hdr.Constraints, &snap.Constraints); err != nil {
			return nil, d.corruptf("constraint set: %v", err)
		}
	}
	if snap.Schema != SchemaFingerprint() {
		return nil, fmt.Errorf("%w: snapshot %q, this build %q", ErrStale, snap.Schema, SchemaFingerprint())
	}
	if snap.Constraints == nil {
		return nil, fmt.Errorf("campaignstore: snapshot for %s has no constraint set", label)
	}
	if fp := snap.Constraints.Fingerprint(); fp != snap.SetFingerprint {
		return nil, fmt.Errorf("campaignstore: snapshot for %s fails its constraint fingerprint (%s != %s)",
			label, fp, snap.SetFingerprint)
	}
	d.hdr = snap
	return d, nil
}

// Header returns the decoded snapshot metadata (Outcomes/Stamps nil).
func (d *SnapshotDecoder) Header() *Snapshot { return d.hdr }

func (d *SnapshotDecoder) readBlob() ([]byte, error) {
	n, err := binary.ReadUvarint(d.s)
	if err != nil {
		return nil, d.corruptf("truncated length prefix")
	}
	if n > maxFrameLen {
		return nil, d.corruptf("frame length %d exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.s, b); err != nil {
		return nil, d.corruptf("truncated frame")
	}
	return b, nil
}

// Next returns the next outcome record. After the final record it
// verifies the trailer and returns io.EOF. The returned outJSON is the
// record's compact outcome encoding (what the fingerprint hashes); out
// is its decoded form.
func (d *SnapshotDecoder) Next() (key string, stamp time.Time, outJSON []byte, out inject.Outcome, err error) {
	if d.done {
		return "", time.Time{}, nil, inject.Outcome{}, io.EOF
	}
	n, rerr := binary.ReadUvarint(d.s)
	if rerr != nil {
		return "", time.Time{}, nil, inject.Outcome{}, d.corruptf("truncated record")
	}
	if n == 0 {
		// Terminator: verify count, then CRC.
		want, rerr := binary.ReadUvarint(d.s)
		if rerr != nil {
			return "", time.Time{}, nil, inject.Outcome{}, d.corruptf("truncated trailer")
		}
		if int(want) != d.count {
			return "", time.Time{}, nil, inject.Outcome{}, d.corruptf("record count %d, trailer says %d", d.count, want)
		}
		sum := d.s.crc // CRC of everything consumed before the trailer CRC
		var tail [4]byte
		if _, rerr := io.ReadFull(d.s.br, tail[:]); rerr != nil {
			return "", time.Time{}, nil, inject.Outcome{}, d.corruptf("truncated CRC trailer")
		}
		if got := binary.LittleEndian.Uint32(tail[:]); got != sum {
			return "", time.Time{}, nil, inject.Outcome{}, d.corruptf("CRC mismatch")
		}
		d.done = true
		return "", time.Time{}, nil, inject.Outcome{}, io.EOF
	}
	if n > maxFrameLen {
		return "", time.Time{}, nil, inject.Outcome{}, d.corruptf("key length %d exceeds limit", n)
	}
	kb := make([]byte, n)
	if _, rerr := io.ReadFull(d.s, kb); rerr != nil {
		return "", time.Time{}, nil, inject.Outcome{}, d.corruptf("truncated key")
	}
	key = string(kb)
	if d.last != "" && key <= d.last {
		return "", time.Time{}, nil, inject.Outcome{}, d.corruptf("keys out of order (%q after %q)", key, d.last)
	}
	d.last = key
	nano, rerr := binary.ReadVarint(d.s)
	if rerr != nil {
		return "", time.Time{}, nil, inject.Outcome{}, d.corruptf("truncated stamp")
	}
	stamp = time.Unix(0, nano).UTC()
	outJSON, err = d.readBlob()
	if err != nil {
		return "", time.Time{}, nil, inject.Outcome{}, err
	}
	if rerr := json.Unmarshal(outJSON, &out); rerr != nil {
		return "", time.Time{}, nil, inject.Outcome{}, d.corruptf("outcome %q: %v", key, rerr)
	}
	d.count++
	return key, stamp, outJSON, out, nil
}

// decodeBinarySnapshot materializes a whole binary snapshot — the Load
// path. Every record is decoded and the trailer verified before the
// snapshot is returned, so a truncated or corrupt file yields an error
// and a nil snapshot, never a partial replay.
func decodeBinarySnapshot(data []byte, label string) (*Snapshot, error) {
	d, err := NewSnapshotDecoder(bytes.NewReader(data), label)
	if err != nil {
		return nil, err
	}
	snap := d.Header()
	snap.Outcomes = make(map[string]inject.Outcome)
	snap.Stamps = make(map[string]time.Time)
	for {
		key, stamp, _, out, err := d.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		snap.Outcomes[key] = out
		snap.Stamps[key] = stamp
	}
	return snap, nil
}

// SnapshotIter streams one snapshot file's records in ascending key
// order — the shard merge's per-source cursor. A binary container is
// truly streamed (one record in memory at a time); a legacy v2 JSON
// document has no record framing, so it is materialized once and
// replayed in key order — memory is bounded by that single legacy file,
// never by the whole shard set.
type SnapshotIter struct {
	hdr  *Snapshot
	next func() (string, time.Time, inject.Outcome, error)
	f    *os.File
}

// OpenSnapshotIter opens the snapshot file at path for streaming reads.
// Header validation (magic, schema staleness, constraint fingerprint)
// happens here, before any record is consumed; label names the source
// in errors.
func OpenSnapshotIter(path, label string) (*SnapshotIter, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("campaignstore: %w", err)
	}
	br := bufio.NewReaderSize(f, 1<<16)
	peek, _ := br.Peek(len(snapMagic))
	if bytes.Equal(peek, snapMagic) {
		d, err := NewSnapshotDecoder(br, label)
		if err != nil {
			f.Close()
			return nil, err
		}
		return &SnapshotIter{hdr: d.Header(), f: f, next: func() (string, time.Time, inject.Outcome, error) {
			k, stamp, _, out, err := d.Next()
			return k, stamp, out, err
		}}, nil
	}
	data, err := io.ReadAll(br)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("campaignstore: %w", err)
	}
	snap, err := decodeSnapshot(data, label)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(snap.Outcomes))
	for k := range snap.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	return &SnapshotIter{hdr: snap, next: func() (string, time.Time, inject.Outcome, error) {
		if i >= len(keys) {
			return "", time.Time{}, inject.Outcome{}, io.EOF
		}
		k := keys[i]
		i++
		return k, snap.Stamps[k], snap.Outcomes[k], nil
	}}, nil
}

// Header returns the source snapshot's metadata (for a binary source,
// Outcomes/Stamps are nil — the records only exist in the stream).
func (it *SnapshotIter) Header() *Snapshot { return it.hdr }

// Next returns the next record, or io.EOF after the last one (for a
// binary source, only once the trailer verified the stream complete).
func (it *SnapshotIter) Next() (key string, stamp time.Time, out inject.Outcome, err error) {
	return it.next()
}

// Close releases the underlying file.
func (it *SnapshotIter) Close() error {
	if it.f != nil {
		return it.f.Close()
	}
	return nil
}
