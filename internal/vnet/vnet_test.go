package vnet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestBindAndConflict(t *testing.T) {
	n := New()
	if err := n.Bind("tcp", 8080, "a"); err != nil {
		t.Fatal(err)
	}
	if err := n.Bind("tcp", 8080, "b"); !errors.Is(err, ErrPortInUse) {
		t.Errorf("second bind = %v, want ErrPortInUse", err)
	}
	// Different protocol: independent port space.
	if err := n.Bind("udp", 8080, "b"); err != nil {
		t.Errorf("udp bind = %v", err)
	}
}

func TestBindValidation(t *testing.T) {
	n := New()
	if err := n.Bind("tcp", 0, "a"); !errors.Is(err, ErrPortRange) {
		t.Errorf("port 0 = %v", err)
	}
	if err := n.Bind("tcp", 70000, "a"); !errors.Is(err, ErrPortRange) {
		t.Errorf("port 70000 = %v", err)
	}
	if err := n.Bind("tcp", -1, "a"); !errors.Is(err, ErrPortRange) {
		t.Errorf("port -1 = %v", err)
	}
	if err := n.Bind("tcp", 80, "a"); !errors.Is(err, ErrPortReserved) {
		t.Errorf("privileged port = %v", err)
	}
	n.AllowPrivileged = true
	if err := n.Bind("tcp", 80, "a"); err != nil {
		t.Errorf("privileged bind with AllowPrivileged = %v", err)
	}
}

func TestReleaseAndOwner(t *testing.T) {
	n := New()
	_ = n.Bind("tcp", 8080, "srv")
	_ = n.Bind("tcp", 8081, "srv")
	_ = n.Bind("tcp", 8082, "other")
	n.Release("tcp", 8080)
	if n.Occupied("tcp", 8080) {
		t.Error("released port still occupied")
	}
	n.ReleaseOwner("srv")
	if n.Occupied("tcp", 8081) {
		t.Error("owner release missed 8081")
	}
	if !n.Occupied("tcp", 8082) {
		t.Error("owner release must not touch other owners")
	}
	if n.BoundCount() != 1 {
		t.Errorf("bound = %d, want 1", n.BoundCount())
	}
}

func TestOccupyForTest(t *testing.T) {
	n := New()
	if err := n.OccupyForTest("udp", 3130); err != nil {
		t.Fatal(err)
	}
	if err := n.Bind("udp", 3130, "proxy"); !errors.Is(err, ErrPortInUse) {
		t.Errorf("bind of occupied = %v", err)
	}
}

func TestValidIP(t *testing.T) {
	valid := []string{"127.0.0.1", "0.0.0.0", "255.255.255.255", "10.1.2.3"}
	invalid := []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "999.1.1.1",
		"a.b.c.d", "01.2.3.4", "-1.2.3.4", "1..3.4", "not.an.ip.addr"}
	for _, s := range valid {
		if !ValidIP(s) {
			t.Errorf("ValidIP(%q) = false", s)
		}
	}
	for _, s := range invalid {
		if ValidIP(s) {
			t.Errorf("ValidIP(%q) = true", s)
		}
	}
}

// Property: every dotted quad built from in-range octets validates, unless
// an octet has a leading zero.
func TestPropertyValidIPQuads(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		s := fmt.Sprintf("%d.%d.%d.%d", a, b, c, d)
		return ValidIP(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidHost(t *testing.T) {
	valid := []string{"example.com", "www.example.com", "proxy", "a-b.c-d.org", "10.0.0.1"}
	invalid := []string{"", "bad host!", "-leading.com", "trailing-.com",
		"under_score.com", "a..b"}
	for _, s := range valid {
		if !ValidHost(s) {
			t.Errorf("ValidHost(%q) = false", s)
		}
	}
	for _, s := range invalid {
		if ValidHost(s) {
			t.Errorf("ValidHost(%q) = true", s)
		}
	}
}

func TestConcurrentBind(t *testing.T) {
	n := New()
	var wg sync.WaitGroup
	errs := make([]error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			errs[k] = n.Bind("tcp", 9000, fmt.Sprintf("g%d", k))
		}(i)
	}
	wg.Wait()
	ok := 0
	for _, err := range errs {
		if err == nil {
			ok++
		}
	}
	if ok != 1 {
		t.Errorf("%d concurrent binds succeeded, want exactly 1", ok)
	}
}
