// Package vnet provides a virtual network substrate: a port registry with
// bind/occupy semantics and simple address validation. SPEX-INJ's PORT-type
// injections (e.g. "udp_port = an_occupied_port", Figure 5c) are exercised
// against this registry instead of a real network stack.
package vnet

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Errors returned by Bind.
var (
	ErrPortInUse    = errors.New("vnet: address already in use")
	ErrPortRange    = errors.New("vnet: port out of range")
	ErrPortReserved = errors.New("vnet: permission denied (privileged port)")
)

// Net is a virtual network with a per-protocol port space. It is safe for
// concurrent use.
type Net struct {
	mu    sync.Mutex
	bound map[string]string // "proto/port" -> owner
	// AllowPrivileged grants binding of ports < 1024 (the simulated
	// process runs unprivileged by default, matching the evaluated
	// server setups).
	AllowPrivileged bool
}

// New returns an empty virtual network.
func New() *Net {
	return &Net{bound: make(map[string]string)}
}

func key(proto string, port int) string { return proto + "/" + strconv.Itoa(port) }

// Bind reserves proto/port for owner. It fails if the port is occupied,
// out of the valid range, or privileged.
func (n *Net) Bind(proto string, port int, owner string) error {
	if port <= 0 || port > 65535 {
		return fmt.Errorf("bind %s port %d: %w", proto, port, ErrPortRange)
	}
	if port < 1024 && !n.AllowPrivileged {
		return fmt.Errorf("bind %s port %d: %w", proto, port, ErrPortReserved)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	k := key(proto, port)
	if holder, ok := n.bound[k]; ok {
		return fmt.Errorf("bind %s port %d (held by %s): %w", proto, port, holder, ErrPortInUse)
	}
	n.bound[k] = owner
	return nil
}

// Release frees proto/port.
func (n *Net) Release(proto string, port int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.bound, key(proto, port))
}

// ReleaseOwner frees every port held by owner (used when an instance shuts
// down or crashes).
func (n *Net) ReleaseOwner(owner string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for k, o := range n.bound {
		if o == owner {
			delete(n.bound, k)
		}
	}
}

// Occupied reports whether proto/port is bound.
func (n *Net) Occupied(proto string, port int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.bound[key(proto, port)]
	return ok
}

// OccupyForTest binds a port on behalf of the injection harness so that a
// subsequent target Bind fails with ErrPortInUse.
func (n *Net) OccupyForTest(proto string, port int) error {
	return n.Bind(proto, port, "spex-inj")
}

// BoundCount returns the number of bound ports.
func (n *Net) BoundCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.bound)
}

// ValidIP reports whether s is a syntactically valid IPv4 dotted quad.
// Targets use it to validate IPADDR parameters without the real net
// package's resolver behaviour.
func ValidIP(s string) bool {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return false
	}
	for _, p := range parts {
		if p == "" || len(p) > 3 {
			return false
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return false
		}
		if len(p) > 1 && p[0] == '0' {
			return false // no leading zeros
		}
	}
	return true
}

// ValidHost reports whether s looks like a resolvable host name or IP.
func ValidHost(s string) bool {
	if s == "" || len(s) > 253 {
		return false
	}
	if ValidIP(s) {
		return true
	}
	for _, label := range strings.Split(s, ".") {
		if label == "" || len(label) > 63 {
			return false
		}
		for i, r := range label {
			alnum := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9'
			if !alnum && !(r == '-' && i > 0 && i < len(label)-1) {
				return false
			}
		}
	}
	return true
}
