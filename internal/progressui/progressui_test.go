package progressui

import (
	"bytes"
	"strings"
	"testing"

	"spex/internal/shard"
)

func TestTTYRendererDrawsPerSystemBars(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf, true, "spexinj")
	// First event renders; the second system's first event forces a
	// render; the final aggregate event forces a render.
	r.Handle(shard.Progress{System: "proxyd", SystemDone: 1, SystemTotal: 2, Done: 1, Total: 4})
	r.Handle(shard.Progress{System: "mydb", SystemDone: 1, SystemTotal: 2, Done: 2, Total: 4})
	r.Handle(shard.Progress{System: "proxyd", SystemDone: 2, SystemTotal: 2, Done: 3, Total: 4})
	r.Handle(shard.Progress{System: "mydb", SystemDone: 2, SystemTotal: 2, Done: 4, Total: 4})
	r.Finish()
	out := buf.String()
	for _, want := range []string{
		"spexinj: 4/4",
		"proxyd [########################] 2/2",
		"mydb   [########################] 2/2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("TTY output missing %q:\n%q", want, out)
		}
	}
	// Re-renders must move the cursor back over the block.
	if !strings.Contains(out, "\x1b[3A") {
		t.Errorf("TTY output never rewrote the 3-line block in place:\n%q", out)
	}
	// A half-done bar appeared before the full one.
	if !strings.Contains(out, "[############------------] 1/2") {
		t.Errorf("TTY output missing the half-done bar:\n%q", out)
	}
}

func TestNonTTYRendererFallsBackToAggregateLines(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf, false, "spexeval")
	r.Handle(shard.Progress{System: "proxyd", SystemDone: 1, SystemTotal: 3, Done: 1, Total: 3})
	r.Handle(shard.Progress{System: "proxyd", SystemDone: 2, SystemTotal: 3, Done: 2, Total: 3}) // throttled
	r.Handle(shard.Progress{System: "proxyd", SystemDone: 3, SystemTotal: 3, Done: 3, Total: 3}) // final: forced
	r.Finish()
	out := buf.String()
	if strings.Contains(out, "\x1b[") || strings.Contains(out, "\r") {
		t.Errorf("non-TTY output contains terminal control sequences:\n%q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("non-TTY renderer printed %d lines, want 2 (first + final):\n%q", len(lines), out)
	}
	if lines[0] != "spexeval: 1/3 (proxyd 1/3)" {
		t.Errorf("first line = %q", lines[0])
	}
	if lines[1] != "spexeval: 3/3 (proxyd 3/3)" {
		t.Errorf("final line = %q", lines[1])
	}
}

func TestRendererToleratesDroppedEvents(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf, false, "spexinj")
	// The hub's lag policy can drop intermediate events: the renderer
	// must converge on the freshest counts it sees, never regress.
	r.Handle(shard.Progress{System: "a", SystemDone: 5, SystemTotal: 9, Done: 5, Total: 9})
	r.Handle(shard.Progress{System: "a", SystemDone: 3, SystemTotal: 9, Done: 3, Total: 9}) // stale straggler
	r.Handle(shard.Progress{System: "a", SystemDone: 9, SystemTotal: 9, Done: 9, Total: 9})
	r.Finish()
	if strings.Contains(buf.String(), "spexinj: 3/9") {
		t.Errorf("renderer regressed to a stale count:\n%q", buf.String())
	}
	if !strings.Contains(buf.String(), "spexinj: 9/9 (a 9/9)") {
		t.Errorf("renderer never reached the final count:\n%q", buf.String())
	}
}
