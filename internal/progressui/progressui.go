// Package progressui renders the campaign progress stream
// (shard.Progress, usually consumed off a shard.Hub subscription) for
// a terminal or a log. It is the one renderer behind `spexinj
// -progress` and `spexeval -progress -global`, so the two drivers
// cannot drift:
//
//   - On a terminal (a character device — the same detection the
//     drivers have used since the one-line \r renderer) it draws a
//     full multi-line display: one bar per target system plus an
//     aggregate header, rewritten in place with ANSI cursor movement.
//     Systems appear as their first outcome completes, so the renderer
//     needs no up-front workload inventory.
//   - Anywhere else (CI logs, file redirects) in-place rewriting would
//     smear every update into a separate garbled line, so it falls
//     back to the established one-line aggregate: the first event,
//     then at most one line per second, then the final count.
package progressui

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"spex/internal/shard"
)

// IsTerminal reports whether f is a character device — the TTY test
// deciding between the bar display and line-oriented output.
func IsTerminal(f *os.File) bool {
	fi, err := f.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// barWidth is the fill width of one per-system bar.
const barWidth = 24

// Renderer consumes Progress events and renders them to one writer.
// It is not safe for concurrent use; feed it from a single goroutine
// (a hub subscription loop).
type Renderer struct {
	w      io.Writer
	tty    bool
	prefix string

	order   []string       // systems in first-seen order
	done    map[string]int // freshest per-system done count
	total   map[string]int // per-system campaign size
	aggDone int
	aggTot  int

	lines    int // lines of the previous TTY render (to rewrite over)
	dirty    bool
	last     time.Time
	throttle time.Duration
}

// New returns a renderer writing to w. tty selects the multi-line bar
// display; prefix labels the output (e.g. "spexinj"). Use NewAuto to
// derive tty from the output file itself.
func New(w io.Writer, tty bool, prefix string) *Renderer {
	throttle := time.Second // non-TTY: at most one line per second
	if tty {
		throttle = 50 * time.Millisecond // smooth but not busy
	}
	return &Renderer{w: w, tty: tty, prefix: prefix,
		done: make(map[string]int), total: make(map[string]int), throttle: throttle}
}

// NewAuto returns a renderer for f with TTY detection applied.
func NewAuto(f *os.File, prefix string) *Renderer {
	return New(f, IsTerminal(f), prefix)
}

// Attach is the whole driver-side wiring: it creates a fan-out hub
// (shard.Hub — the same pipeline the spexd daemon serves over SSE),
// subscribes a renderer for f to it, and returns the hub's Emit (plug
// it into shard.Options.OnProgress) plus a finish function that drains
// the hub and completes the display.
func Attach(f *os.File, prefix string) (emit func(shard.Progress), finish func()) {
	hub := shard.NewHub()
	ch, _ := hub.Subscribe(1024)
	r := NewAuto(f, prefix)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for p := range ch {
			r.Handle(p)
		}
	}()
	return hub.Emit, func() {
		hub.Close()
		<-done
		r.Finish()
	}
}

// Handle folds one progress event into the display. Yields and
// failures still advance nothing (their SystemDone reflects the
// scheduler's count either way); the renderer just tracks the freshest
// numbers, so dropped hub events (the drop-oldest lag policy) are
// harmless.
func (r *Renderer) Handle(p shard.Progress) {
	fresh := false
	if _, ok := r.total[p.System]; !ok {
		r.order = append(r.order, p.System)
		fresh = true
	}
	if p.SystemDone > r.done[p.System] {
		r.done[p.System] = p.SystemDone
	}
	r.total[p.System] = p.SystemTotal
	if p.Done > r.aggDone {
		r.aggDone = p.Done
	}
	r.aggTot = p.Total
	r.dirty = true

	final := p.Done == p.Total
	if fresh || final || r.last.IsZero() || time.Since(r.last) >= r.throttle {
		r.render()
	}
}

// Finish flushes the final state. On a TTY the display block already
// ends in a newline; otherwise the last aggregate line is printed if
// it never made it past the throttle.
func (r *Renderer) Finish() {
	if r.dirty {
		r.render()
	}
}

func (r *Renderer) render() {
	r.last = time.Now()
	r.dirty = false
	if !r.tty {
		fmt.Fprintln(r.w, r.aggregateLine())
		return
	}
	var b strings.Builder
	if r.lines > 0 {
		// Rewrite over the previous block: cursor up, then erase each
		// line as it is redrawn (the block only ever grows).
		fmt.Fprintf(&b, "\x1b[%dA", r.lines)
	}
	lines := r.barLines()
	for _, l := range lines {
		b.WriteString("\r\x1b[2K")
		b.WriteString(l)
		b.WriteByte('\n')
	}
	r.lines = len(lines)
	io.WriteString(r.w, b.String())
}

// aggregateLine is the non-TTY format, unchanged from the drivers'
// original one-line renderer: aggregate done/total plus every
// seen system's own count.
func (r *Renderer) aggregateLine() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d/%d", r.prefix, r.aggDone, r.aggTot)
	sep := " ("
	for _, name := range r.order {
		fmt.Fprintf(&b, "%s%s %d/%d", sep, name, r.done[name], r.total[name])
		sep = ", "
	}
	if sep == ", " {
		b.WriteString(")")
	}
	return b.String()
}

// barLines is the TTY display: aggregate header, then one bar per
// system in first-seen order.
func (r *Renderer) barLines() []string {
	lines := make([]string, 0, len(r.order)+1)
	lines = append(lines, fmt.Sprintf("%s: %d/%d", r.prefix, r.aggDone, r.aggTot))
	width := 0
	for _, name := range r.order {
		if len(name) > width {
			width = len(name)
		}
	}
	for _, name := range r.order {
		lines = append(lines, fmt.Sprintf("  %-*s %s %d/%d",
			width, name, bar(r.done[name], r.total[name]), r.done[name], r.total[name]))
	}
	return lines
}

// bar renders a fixed-width fill bar.
func bar(done, total int) string {
	fill := 0
	if total > 0 {
		fill = done * barWidth / total
	}
	if fill > barWidth {
		fill = barWidth
	}
	return "[" + strings.Repeat("#", fill) + strings.Repeat("-", barWidth-fill) + "]"
}
