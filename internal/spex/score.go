package spex

import (
	"sort"

	"spex/internal/constraint"
)

// Accuracy is an inference-precision tally for one constraint kind
// (Table 12): Correct inferred constraints over Total inferred.
type Accuracy struct {
	Correct int
	Total   int
}

// Ratio returns the accuracy as a fraction, or -1 when nothing was
// inferred (reported as N/A, matching the paper's OpenLDAP control-dep
// cell).
func (a Accuracy) Ratio() float64 {
	if a.Total == 0 {
		return -1
	}
	return float64(a.Correct) / float64(a.Total)
}

// Score compares an inferred constraint set against a manually verified
// ground truth and returns per-kind accuracy. A constraint counts as
// correct if the ground truth contains a matching constraint (see Matches).
func Score(inferred, truth *constraint.Set) map[constraint.Kind]Accuracy {
	out := map[constraint.Kind]Accuracy{}
	for _, c := range inferred.Constraints {
		acc := out[c.Kind]
		acc.Total++
		if matchesAny(c, truth) {
			acc.Correct++
		}
		out[c.Kind] = acc
	}
	return out
}

// matchesAny checks c against every truth candidate on its parameter (and,
// for value relationships, its peer — flipped relations live there).
func matchesAny(c *constraint.Constraint, truth *constraint.Set) bool {
	for _, t := range truth.ByParam(c.Param) {
		if Matches(c, t) {
			return true
		}
	}
	if c.Kind == constraint.KindValueRel {
		for _, t := range truth.ByParam(c.Peer) {
			if Matches(c, t) {
				return true
			}
		}
	}
	return false
}

// Recall tallies, per kind, how many ground-truth constraints were found
// by the inference (used by the confidence-threshold ablation).
func Recall(inferred, truth *constraint.Set) map[constraint.Kind]Accuracy {
	out := map[constraint.Kind]Accuracy{}
	for _, t := range truth.Constraints {
		acc := out[t.Kind]
		acc.Total++
		// Matches is asymmetric for enums (inferred ⊆ truth), so keep
		// the inferred constraint as the first argument.
		candidates := inferred.ByParam(t.Param)
		if t.Kind == constraint.KindValueRel {
			candidates = append(candidates, inferred.ByParam(t.Peer)...)
		}
		for _, c := range candidates {
			if Matches(c, t) {
				acc.Correct++
				break
			}
		}
		out[t.Kind] = acc
	}
	return out
}

// Matches reports whether an inferred constraint agrees with a
// ground-truth constraint of the same kind and parameter. Value
// relationships additionally match with their operands flipped (P > Q is
// the constraint Q < P).
func Matches(c, t *constraint.Constraint) bool {
	if c.Kind != t.Kind {
		return false
	}
	if c.Param != t.Param && c.Kind != constraint.KindValueRel {
		return false
	}
	switch c.Kind {
	case constraint.KindBasicType:
		return c.Basic == t.Basic
	case constraint.KindSemanticType:
		if c.Semantic != t.Semantic {
			return false
		}
		// Unit must agree when the truth declares one.
		if t.Unit != constraint.UnitNone && c.Unit != t.Unit {
			return false
		}
		return true
	case constraint.KindRange:
		if len(t.Enum) > 0 || len(c.Enum) > 0 {
			return enumEqual(c.Enum, t.Enum)
		}
		return validIntervalsEqual(c.ValidIntervals(), t.ValidIntervals())
	case constraint.KindControlDep:
		return c.Peer == t.Peer && c.Cond == t.Cond && c.Value == t.Value
	case constraint.KindValueRel:
		if c.Param == t.Param && c.Peer == t.Peer && c.Rel == t.Rel {
			return true
		}
		// P > Q is the same constraint as Q < P.
		return c.Peer == t.Param && c.Param == t.Peer && c.Rel == t.Rel.Flip()
	}
	return false
}

// enumEqual accepts an inferred enum whose valid values form a non-empty
// subset of the truth's valid values: parsers frequently compare only the
// distinguished value ("on") and default everything else, which is a
// correct — if partial — view of the accepted list.
func enumEqual(inferred, truth []constraint.EnumValue) bool {
	iv, tv := validValues(inferred), validValues(truth)
	if len(iv) == 0 || len(iv) > len(tv) {
		return false
	}
	set := make(map[string]bool, len(tv))
	for _, v := range tv {
		set[v] = true
	}
	for _, v := range iv {
		if !set[v] {
			return false
		}
	}
	return true
}

func validValues(evs []constraint.EnumValue) []string {
	var out []string
	for _, e := range evs {
		if e.Valid && e.Value != "*" {
			out = append(out, e.Value)
		}
	}
	sort.Strings(out)
	return out
}

func validIntervalsEqual(a, b []constraint.Interval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].HasMin != b[i].HasMin || a[i].HasMax != b[i].HasMax {
			return false
		}
		if a[i].HasMin && a[i].Min != b[i].Min {
			return false
		}
		if a[i].HasMax && a[i].Max != b[i].Max {
			return false
		}
	}
	return true
}
