package spex

import (
	"testing"
	"testing/quick"

	"spex/internal/apispec"
	"spex/internal/constraint"
)

// TestPropertyIntervalPartition checks that the numeric-range builder
// always produces a gapless, non-overlapping partition of the integer
// line whose validity is decidable at every sample point. It drives the
// full inference pipeline with generated threshold pairs.
func TestPropertyIntervalPartition(t *testing.T) {
	f := func(aRaw, bRaw int16) bool {
		a, b := int64(aRaw), int64(bRaw)
		if a == b {
			b = a + 1
		}
		if a > b {
			a, b = b, a
		}
		src := `package t

type C struct{ v int64 }

var c = &C{}

type opt struct {
	name string
	ptr  *int64
}

var opts = []opt{{"p", &c.v}}

func validate() {
	if c.v < ` + itoa(a) + ` {
		c.v = ` + itoa(a) + `
	} else if c.v > ` + itoa(b) + ` {
		c.v = ` + itoa(b) + `
	}
}
`
		res, err := Infer("t", map[string]string{"t.go": src},
			`{ @STRUCT = opts @PAR = [opt, 1] @VAR = [opt, 2] }`,
			nil, apispec.New(), DefaultOptions())
		if err != nil {
			return false
		}
		var rng *constraint.Constraint
		for _, c := range res.Set.ByParam("p") {
			if c.Kind == constraint.KindRange {
				rng = c
			}
		}
		if rng == nil {
			return false
		}
		// The partition: the first interval is open below, the last is
		// open above, and consecutive intervals tile the line.
		ivs := rng.Intervals
		if len(ivs) == 0 || ivs[0].HasMin || ivs[len(ivs)-1].HasMax {
			return false
		}
		for i := 1; i < len(ivs); i++ {
			if !ivs[i-1].HasMax || !ivs[i].HasMin {
				return false
			}
			if ivs[i-1].Max+1 != ivs[i].Min {
				return false // gap or overlap
			}
		}
		// The valid region must be exactly [a, b].
		valid := rng.ValidIntervals()
		if len(valid) != 1 {
			return false
		}
		return valid[0].HasMin && valid[0].Min == a && valid[0].HasMax && valid[0].Max == b
	}
	cfg := &quick.Config{MaxCount: 30} // each case runs the full pipeline
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func itoa(v int64) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

// TestSwitchEnumInference checks the switch-statement path of enumerative
// range inference (paper §2.2.3: "switch statements or if...else
// if...else logics").
func TestSwitchEnumInference(t *testing.T) {
	src := `package t

type C struct{ mode string }

var c = &C{}

type opt struct {
	name string
	ptr  *string
}

var opts = []opt{{"mode", &c.mode}}

func apply() {
	switch c.mode {
	case "fast":
		c.mode = "fast"
	case "safe":
		c.mode = "safe"
	default:
		c.mode = "safe"
	}
}
`
	res, err := Infer("t", map[string]string{"t.go": src},
		`{ @STRUCT = opts @PAR = [opt, 1] @VAR = [opt, 2] }`,
		nil, apispec.New(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var enum *constraint.Constraint
	for _, c := range res.Set.ByParam("mode") {
		if c.Kind == constraint.KindRange && len(c.Enum) > 0 {
			enum = c
		}
	}
	if enum == nil {
		t.Fatal("no enum constraint from switch")
	}
	vals := map[string]bool{}
	overruled := false
	for _, ev := range enum.Enum {
		if ev.Valid {
			vals[ev.Value] = true
		}
		if ev.Overruled {
			overruled = true
		}
	}
	if !vals["fast"] || !vals["safe"] {
		t.Errorf("enum values = %v, want fast+safe", enum.Enum)
	}
	if !overruled {
		t.Error("silent default overruling not recorded")
	}
}

// TestNumericEqualityChain checks else-if equality chains (the
// innodb_flush_log_at_trx_commit pattern): 0/1/2 valid, the rest
// silently reset.
func TestNumericEqualityChain(t *testing.T) {
	src := `package t

type C struct{ v int64 }

var c = &C{}

type opt struct {
	name string
	ptr  *int64
}

var opts = []opt{{"p", &c.v}}

func validate() {
	if c.v == 0 {
		_ = c.v
	} else if c.v == 1 {
		_ = c.v
	} else if c.v == 2 {
		_ = c.v
	} else {
		c.v = 1
	}
}
`
	res, err := Infer("t", map[string]string{"t.go": src},
		`{ @STRUCT = opts @PAR = [opt, 1] @VAR = [opt, 2] }`,
		nil, apispec.New(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var rng *constraint.Constraint
	for _, c := range res.Set.ByParam("p") {
		if c.Kind == constraint.KindRange && len(c.Intervals) > 0 {
			rng = c
		}
	}
	if rng == nil {
		t.Fatal("no range constraint")
	}
	valid := rng.ValidIntervals()
	if len(valid) != 1 || !valid[0].HasMin || valid[0].Min != 0 ||
		!valid[0].HasMax || valid[0].Max != 2 {
		t.Errorf("valid region = %v, want [0,2]", valid)
	}
}
