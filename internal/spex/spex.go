// Package spex is the constraint-inference engine (the paper's §2). It
// wires the pipeline together: parse the corpus (frontend), extract
// parameter-to-variable mappings from annotations (mapping), propagate
// data flow and collect observations (dataflow), and derive the five kinds
// of configuration constraints. It also scores inference accuracy against
// a ground-truth constraint set (Table 12).
package spex

import (
	"context"
	"fmt"
	"math"
	"sort"

	"spex/internal/annot"
	"spex/internal/apispec"
	"spex/internal/constraint"
	"spex/internal/dataflow"
	"spex/internal/engine"
	"spex/internal/frontend"
	"spex/internal/mapping"
	"spex/internal/sim"
)

// Options tune the inference engine. The defaults are the paper's.
type Options struct {
	// DepConfidence is the MAY-belief confidence threshold for reporting
	// control dependencies (paper §2.2.4; default 0.75).
	DepConfidence float64
	// MaxRelHops bounds the number of intermediate variables a value
	// relationship may be transited through (paper §2.2.5; default 1).
	MaxRelHops int
}

// DefaultOptions returns the paper's settings.
func DefaultOptions() Options {
	return Options{DepConfidence: 0.75, MaxRelHops: 1}
}

// UnsafeUse records a parameter flowing through an unsafe transformation
// API (Table 8).
type UnsafeUse struct {
	Param string
	API   string
	Loc   constraint.SourceLoc
}

// Result is the outcome of analyzing one target system.
type Result struct {
	System string
	Set    *constraint.Set
	Pairs  []mapping.Pair
	Obs    []dataflow.Obs
	// LoA is the lines-of-annotation count (Table 4).
	LoA int
	// LoC is the corpus size in source lines (Table 4).
	LoC int
	// Params is the number of distinct mapped parameters (Table 4).
	Params int
	// Unsafe lists unsafe transformation-API uses.
	Unsafe []UnsafeUse
	// Convention is the mapping convention detected from annotations
	// (Table 1).
	Convention string
}

// Infer runs the full pipeline over a source corpus. The manual (may be
// nil) marks inferred constraints as documented or not.
func Infer(system string, sources map[string]string, annText string, manual map[string]sim.ManualEntry, db *apispec.DB, opts Options) (*Result, error) {
	if opts.DepConfidence == 0 {
		opts.DepConfidence = 0.75
	}
	if opts.MaxRelHops == 0 {
		opts.MaxRelHops = 1
	}
	proj, err := frontend.Parse(system, sources)
	if err != nil {
		return nil, fmt.Errorf("spex: %w", err)
	}
	af, err := annot.Parse(annText)
	if err != nil {
		return nil, fmt.Errorf("spex: %w", err)
	}
	pairs, err := mapping.Extract(proj, af)
	if err != nil {
		return nil, fmt.Errorf("spex: %w", err)
	}
	eng := dataflow.New(proj, db)
	for _, p := range pairs {
		eng.Seed(p.Param, p.Loc)
	}
	obs := eng.Run()

	res := &Result{
		System:     system,
		Set:        constraint.NewSet(system),
		Pairs:      pairs,
		Obs:        obs,
		LoA:        af.LoA,
		LoC:        proj.LoC,
		Convention: mapping.Convention(af),
	}
	paramSet := map[string]bool{}
	for _, p := range pairs {
		paramSet[p.Param] = true
	}
	res.Params = len(paramSet)

	d := &deriver{proj: proj, pairs: pairs, obs: obs, opts: opts, res: res, db: db}
	d.basicTypes()
	d.semanticTypes()
	d.ranges()
	d.controlDeps()
	d.valueRels()
	d.unsafeUses()

	if manual != nil {
		for _, c := range res.Set.Constraints {
			if me, ok := manual[c.Param]; ok {
				c.Documented = me.DocumentsKind(c.Kind)
			}
		}
	}
	return res, nil
}

type deriver struct {
	proj  *frontend.Project
	pairs []mapping.Pair
	obs   []dataflow.Obs
	opts  Options
	res   *Result
	db    *apispec.DB
}

func (d *deriver) params() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range d.pairs {
		if !seen[p.Param] {
			seen[p.Param] = true
			out = append(out, p.Param)
		}
	}
	sort.Strings(out)
	return out
}

func (d *deriver) obsFor(param string, kind dataflow.ObsKind) []dataflow.Obs {
	var out []dataflow.Obs
	for _, o := range d.obs {
		if o.Param == param && o.Kind == kind {
			out = append(out, o)
		}
	}
	return out
}

// seedType returns the declared type of a parameter's mapped location.
func (d *deriver) seedType(param string) (constraint.BasicType, constraint.SourceLoc) {
	for _, p := range d.pairs {
		if p.Param != param {
			continue
		}
		if t, ok := locDeclaredType(d.proj, p.Loc); ok {
			return t, p.Site
		}
	}
	return constraint.BasicUnknown, constraint.SourceLoc{}
}

func locDeclaredType(proj *frontend.Project, loc dataflow.Loc) (constraint.BasicType, bool) {
	s := string(loc)
	if len(s) < 3 {
		return constraint.BasicUnknown, false
	}
	body := s[2:]
	switch s[:2] {
	case "G:":
		if t, ok := proj.PkgVars[body]; ok {
			return t.BasicOf(), true
		}
	case "F:":
		for i := 0; i < len(body); i++ {
			if body[i] == '.' {
				st, fld := body[:i], body[i+1:]
				if si, ok := proj.Structs[st]; ok {
					if ft, ok := si.Fields[fld]; ok {
						return ft.BasicOf(), true
					}
				}
			}
		}
	case "P:":
		for i := len(body) - 1; i >= 0; i-- {
			if body[i] == '.' {
				fn, pname := body[:i], body[i+1:]
				if fi, ok := proj.Funcs[fn]; ok {
					for j, n := range fi.ParamNames {
						if n == pname {
							return fi.ParamTypes[j].BasicOf(), true
						}
					}
				}
				break
			}
		}
	}
	return constraint.BasicUnknown, false
}

// basicTypes applies the first-cast-wins rule (paper §2.2.2): a parameter
// stored as a string and later transformed takes the type after the first
// transformation; otherwise the declared type of its variable.
func (d *deriver) basicTypes() {
	for _, param := range d.params() {
		declared, site := d.seedType(param)
		casts := d.obsFor(param, dataflow.ObsType)
		sort.SliceStable(casts, func(i, j int) bool { return casts[i].Hops < casts[j].Hops })

		chosen := declared
		loc := site
		if declared == constraint.BasicString || declared == constraint.BasicUnknown {
			// First-cast-wins, preferring explicit source-level
			// conversions (the declared width) over transformation-API
			// return types (which only reveal "some integer").
			for _, explicitOnly := range []bool{true, false} {
				if chosen != declared && chosen != constraint.BasicUnknown {
					break
				}
				for _, c := range casts {
					if explicitOnly && !c.Explicit {
						continue
					}
					if c.Basic != constraint.BasicUnknown && c.Basic != constraint.BasicString {
						chosen = c.Basic
						loc = c.Loc
						break
					}
				}
			}
		}
		if chosen == constraint.BasicUnknown {
			// Everything arrives as a string from the configuration
			// file; with no transformation the basic type is string.
			chosen = constraint.BasicString
		}
		d.res.Set.Add(&constraint.Constraint{
			Kind: constraint.KindBasicType, Param: param, Basic: chosen, Loc: loc,
		})
	}
}

func (d *deriver) semanticTypes() {
	for _, param := range d.params() {
		sems := d.obsFor(param, dataflow.ObsSemantic)
		sort.SliceStable(sems, func(i, j int) bool { return sems[i].Hops < sems[j].Hops })
		byType := map[constraint.SemanticType]*constraint.Constraint{}
		for _, o := range sems {
			c, ok := byType[o.Semantic]
			if !ok {
				c = &constraint.Constraint{
					Kind: constraint.KindSemanticType, Param: param,
					Semantic: o.Semantic, Unit: o.Unit, Loc: o.Loc,
				}
				if c.Unit == apispec.UnitOfDuration {
					c.Unit = constraint.UnitNone
				}
				byType[o.Semantic] = c
				d.res.Set.Add(c)
				continue
			}
			if c.Unit == constraint.UnitNone && o.Unit != constraint.UnitNone && o.Unit != apispec.UnitOfDuration {
				c.Unit = o.Unit
			}
		}
		// Case sensitivity from value comparisons.
		strCmps := d.obsFor(param, dataflow.ObsCompareStr)
		known, insens := false, false
		for _, o := range strCmps {
			if o.Detail == "default" {
				continue
			}
			known = true
			if o.CaseInsensitive {
				insens = true
			}
		}
		if known {
			for _, c := range byType {
				c.CaseKnown, c.CaseSensitive = true, !insens
			}
			if len(byType) == 0 {
				// Pure enum parameter with no semantic API: still record
				// case semantics on the range constraint (built later);
				// store a marker via a dedicated semantic-less constraint
				// is avoided — ranges carry it.
				_ = insens
			}
		}
	}
}

// ranges derives numeric interval constraints and enumerative constraints
// (paper §2.2.3).
func (d *deriver) ranges() {
	for _, param := range d.params() {
		d.numericRange(param)
		d.enumRange(param)
	}
}

func (d *deriver) numericRange(param string) {
	cmps := d.obsFor(param, dataflow.ObsCompareConst)
	if len(cmps) == 0 {
		return
	}
	// Collect breakpoints.
	pts := map[int64]bool{}
	for _, o := range cmps {
		pts[o.Value] = true
	}
	sorted := make([]int64, 0, len(pts))
	for v := range pts {
		sorted = append(sorted, v)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	// Elementary intervals around the breakpoints.
	var intervals []constraint.Interval
	add := func(iv constraint.Interval) { intervals = append(intervals, iv) }
	add(constraint.Interval{HasMax: true, Max: sorted[0] - 1})
	for i, b := range sorted {
		add(constraint.Interval{HasMin: true, Min: b, HasMax: true, Max: b})
		if i+1 < len(sorted) {
			if b+1 <= sorted[i+1]-1 {
				add(constraint.Interval{HasMin: true, Min: b + 1, HasMax: true, Max: sorted[i+1] - 1})
			}
		}
	}
	add(constraint.Interval{HasMin: true, Min: sorted[len(sorted)-1] + 1})

	// Validity per elementary interval from branch behaviour at a sample
	// point. Equality chains ("v==0 ... else if v==1 ... else reset")
	// need chain semantics: the else of a later arm never executes for a
	// sample that matches an earlier arm.
	eqSet := map[int64]bool{}
	for _, o := range cmps {
		if o.Op == constraint.OpEQ {
			eqSet[o.Value] = true
		}
	}
	anyInvalid := false
	for i := range intervals {
		sample := samplePoint(intervals[i])
		valid := true
		for _, o := range cmps {
			taken := o.Op.Holds(sample, o.Value)
			if o.Op == constraint.OpEQ && !taken && eqSet[sample] {
				continue // an earlier equality arm handles this sample
			}
			var be dataflow.BranchBehavior
			if taken {
				be = o.ThenBe
			} else {
				be = o.ElseBe
			}
			if be.Invalid() {
				valid = false
				break
			}
		}
		intervals[i].Valid = valid
		if !valid {
			anyInvalid = true
		}
	}
	if !anyInvalid {
		// All-valid partitions carry no constraint signal; emitting them
		// would flood the set with guard conditions (paper accepts some
		// false positives but we prune the obvious ones).
		return
	}
	merged := mergeIntervals(intervals)
	// Use the first comparison's location as the constraint location.
	d.res.Set.Add(&constraint.Constraint{
		Kind: constraint.KindRange, Param: param,
		Intervals: merged, Loc: cmps[0].Loc,
	})
}

func samplePoint(iv constraint.Interval) int64 {
	switch {
	case iv.HasMin && iv.HasMax:
		return iv.Min + (iv.Max-iv.Min)/2
	case iv.HasMin:
		return iv.Min + 1
	case iv.HasMax:
		return iv.Max - 1
	default:
		return 0
	}
}

func mergeIntervals(in []constraint.Interval) []constraint.Interval {
	var out []constraint.Interval
	for _, iv := range in {
		n := len(out)
		if n > 0 && out[n-1].Valid == iv.Valid && out[n-1].HasMax && iv.HasMin && out[n-1].Max+1 == iv.Min {
			out[n-1].Max = iv.Max
			out[n-1].HasMax = iv.HasMax
			continue
		}
		out = append(out, iv)
	}
	if len(out) > 0 {
		last := &out[len(out)-1]
		if !last.HasMax {
			// keep open end
			_ = last
		}
	}
	return out
}

func (d *deriver) enumRange(param string) {
	cmps := d.obsFor(param, dataflow.ObsCompareStr)
	if len(cmps) == 0 {
		return
	}
	seen := map[string]*constraint.EnumValue{}
	var order []string
	var defaultOverrule bool
	var loc constraint.SourceLoc
	caseInsens := false
	for _, o := range cmps {
		if loc.File == "" {
			loc = o.Loc
		}
		if o.CaseInsensitive {
			caseInsens = true
		}
		if o.Detail == "default" {
			if o.ThenBe.ResetsParam {
				defaultOverrule = true
			}
			continue
		}
		if o.Op == constraint.OpNE {
			continue
		}
		ev, ok := seen[o.StrValue]
		if !ok {
			ev = &constraint.EnumValue{Value: o.StrValue, Valid: true}
			seen[o.StrValue] = ev
			order = append(order, o.StrValue)
		}
		if o.ThenBe.Exits {
			ev.Valid = false
		}
		// The matched branch resetting the parameter to a semantically
		// different value is an overruling of that specific value
		// ("on" assigned as true is the setting itself, not an
		// overrule).
		if o.ThenBe.ResetsParam && !equivConfigValue(o.ThenBe.ResetValue, o.StrValue) {
			ev.Overruled = true
		}
		// An else-branch that silently resets overrules everything
		// outside the matched set.
		if o.HasElse && o.ElseBe.ResetsParam && !o.ElseBe.LogsMessage {
			defaultOverrule = true
		}
	}
	if len(order) == 0 {
		return
	}
	enum := make([]constraint.EnumValue, 0, len(order))
	for _, v := range order {
		enum = append(enum, *seen[v])
	}
	if defaultOverrule {
		// Mark the enum as closed with silent overruling of unlisted
		// values: record a sentinel invalid entry.
		enum = append(enum, constraint.EnumValue{Value: "*", Valid: false, Overruled: true})
	}
	d.res.Set.Add(&constraint.Constraint{
		Kind: constraint.KindRange, Param: param, Enum: enum,
		CaseKnown: true, CaseSensitive: !caseInsens, Loc: loc,
	})
}

// equivConfigValue reports whether two configuration value spellings are
// semantically equivalent (boolean synonyms).
func equivConfigValue(a, b string) bool {
	norm := func(s string) string {
		switch s {
		case "true", "on", "1", "yes":
			return "on"
		case "false", "off", "0", "no":
			return "off"
		}
		return s
	}
	return norm(a) == norm(b)
}

// controlDeps aggregates dominated usages into control dependencies with
// MAY-belief confidence (paper §2.2.4).
func (d *deriver) controlDeps() {
	for _, param := range d.params() {
		all := d.obsFor(param, dataflow.ObsUsage)
		// MAY-belief counting: the denominator is the set of usage
		// statements dominated by *some* configuration condition —
		// usages on unconditional paths (e.g. shared parse helpers,
		// which a context-sensitive analysis would separate per call
		// site) express no belief either way.
		var usages []dataflow.Obs
		for _, u := range all {
			if len(u.Dominators) > 0 {
				usages = append(usages, u)
			}
		}
		if len(usages) == 0 {
			continue
		}
		type key struct {
			peer, value string
			op          constraint.Op
		}
		counts := map[key]int{}
		locs := map[key]constraint.SourceLoc{}
		for _, u := range usages {
			seenInUsage := map[key]bool{}
			for _, dref := range u.Dominators {
				k := key{peer: dref.Peer, value: dref.Value, op: dref.Op}
				if !seenInUsage[k] {
					seenInUsage[k] = true
					counts[k]++
					if _, ok := locs[k]; !ok {
						locs[k] = u.Loc
					}
				}
			}
		}
		total := float64(len(usages))
		keys := make([]key, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].peer != keys[j].peer {
				return keys[i].peer < keys[j].peer
			}
			if keys[i].op != keys[j].op {
				return keys[i].op < keys[j].op
			}
			return keys[i].value < keys[j].value
		})
		for _, k := range keys {
			conf := float64(counts[k]) / total
			if conf+1e-9 < d.opts.DepConfidence {
				continue
			}
			d.res.Set.Add(&constraint.Constraint{
				Kind: constraint.KindControlDep, Param: param,
				Peer: k.peer, Cond: k.op, Value: k.value,
				Confidence: math.Round(conf*1000) / 1000,
				Loc:        locs[k],
			})
		}
	}
}

// valueRels derives value relationships within the hop budget (§2.2.5).
func (d *deriver) valueRels() {
	for _, o := range d.obs {
		if o.Kind != dataflow.ObsRel {
			continue
		}
		if o.Hops > d.opts.MaxRelHops || o.PeerHops > d.opts.MaxRelHops {
			continue
		}
		d.res.Set.Add(&constraint.Constraint{
			Kind: constraint.KindValueRel, Param: o.Param,
			Rel: o.RelOp, Peer: o.Peer, Loc: o.Loc,
		})
	}
}

func (d *deriver) unsafeUses() {
	seen := map[string]bool{}
	add := func(param, api string, loc constraint.SourceLoc) {
		k := param + "|" + api
		if seen[k] {
			return
		}
		seen[k] = true
		d.res.Unsafe = append(d.res.Unsafe, UnsafeUse{Param: param, API: api, Loc: loc})
	}
	for _, o := range d.obs {
		if o.Kind == dataflow.ObsUnsafe {
			add(o.Param, o.API, o.Loc)
		}
	}
	// Comparison-mapped parameters: the raw value string is parsed
	// upstream of the mapped variable; the mapping toolkit records the
	// calls on that path.
	for _, p := range d.pairs {
		for _, call := range p.RHSCalls {
			if spec, ok := d.db.Lookup(call); ok && spec.Unsafe {
				add(p.Param, call, p.Site)
			}
		}
	}
	sort.Slice(d.res.Unsafe, func(i, j int) bool {
		if d.res.Unsafe[i].Param != d.res.Unsafe[j].Param {
			return d.res.Unsafe[i].Param < d.res.Unsafe[j].Param
		}
		return d.res.Unsafe[i].API < d.res.Unsafe[j].API
	})
}

// APIImporter is implemented by targets that ship proprietary library
// APIs; SPEX imports them into the knowledge base before inference (the
// paper's customization hook, used for Storage-A).
type APIImporter interface {
	ImportAPIs(db *apispec.DB)
}

// InferSystem analyzes a simulated target system with the standard
// knowledge base (plus the target's own imported APIs) and default
// options.
func InferSystem(sys sim.System) (*Result, error) {
	db := apispec.New()
	if imp, ok := sys.(APIImporter); ok {
		imp.ImportAPIs(db)
	}
	return Infer(sys.Name(), sys.Sources(), sys.Annotations(), sys.Manual(), db, DefaultOptions())
}

// InferAll analyzes several target systems through the engine scheduler,
// workers wide (0 = one per CPU). Results come back in input order; the
// first inference error (in input order) aborts with that error, as the
// sequential loop it replaces did.
func InferAll(ctx context.Context, systems []sim.System, workers int) ([]*Result, error) {
	results, cancelErr := engine.Run(ctx, len(systems), func(_ context.Context, i int) (*Result, error) {
		return InferSystem(systems[i])
	}, engine.Options[*Result]{Workers: workers})
	if cancelErr != nil {
		return nil, cancelErr
	}
	if err := engine.FirstError(results); err != nil {
		return nil, err
	}
	out, _ := engine.Values(results)
	return out, nil
}
