package spex

import (
	"testing"

	"spex/internal/constraint"
)

func cset(cs ...*constraint.Constraint) *constraint.Set {
	s := constraint.NewSet("t")
	for _, c := range cs {
		s.Add(c)
	}
	return s
}

func TestMatchesBasic(t *testing.T) {
	a := &constraint.Constraint{Kind: constraint.KindBasicType, Param: "p", Basic: constraint.BasicInt32}
	b := &constraint.Constraint{Kind: constraint.KindBasicType, Param: "p", Basic: constraint.BasicInt32}
	c := &constraint.Constraint{Kind: constraint.KindBasicType, Param: "p", Basic: constraint.BasicInt64}
	if !Matches(a, b) || Matches(a, c) {
		t.Error("basic-type matching wrong")
	}
}

func TestMatchesSemanticUnit(t *testing.T) {
	inferred := &constraint.Constraint{Kind: constraint.KindSemanticType, Param: "p",
		Semantic: constraint.SemSize, Unit: constraint.UnitKB}
	truthKB := &constraint.Constraint{Kind: constraint.KindSemanticType, Param: "p",
		Semantic: constraint.SemSize, Unit: constraint.UnitKB}
	truthB := &constraint.Constraint{Kind: constraint.KindSemanticType, Param: "p",
		Semantic: constraint.SemSize, Unit: constraint.UnitByte}
	truthAny := &constraint.Constraint{Kind: constraint.KindSemanticType, Param: "p",
		Semantic: constraint.SemSize}
	if !Matches(inferred, truthKB) {
		t.Error("matching units rejected")
	}
	if Matches(inferred, truthB) {
		t.Error("wrong unit accepted")
	}
	if !Matches(inferred, truthAny) {
		t.Error("unit-agnostic truth must accept any unit")
	}
}

func TestMatchesRangeIntervals(t *testing.T) {
	iv := func(min, max int64) *constraint.Constraint {
		return &constraint.Constraint{Kind: constraint.KindRange, Param: "p",
			Intervals: []constraint.Interval{
				{HasMax: true, Max: min - 1, Valid: false},
				{HasMin: true, Min: min, HasMax: true, Max: max, Valid: true},
				{HasMin: true, Min: max + 1, Valid: false},
			}}
	}
	truth := &constraint.Constraint{Kind: constraint.KindRange, Param: "p",
		Intervals: []constraint.Interval{{HasMin: true, Min: 4, HasMax: true, Max: 255, Valid: true}}}
	if !Matches(iv(4, 255), truth) {
		t.Error("matching valid interval rejected")
	}
	if Matches(iv(4, 100), truth) {
		t.Error("different upper bound accepted")
	}
}

func TestMatchesEnumSubset(t *testing.T) {
	truth := &constraint.Constraint{Kind: constraint.KindRange, Param: "p",
		Enum: []constraint.EnumValue{
			{Value: "on", Valid: true}, {Value: "off", Valid: true}}}
	subset := &constraint.Constraint{Kind: constraint.KindRange, Param: "p",
		Enum: []constraint.EnumValue{
			{Value: "on", Valid: true},
			{Value: "*", Valid: false, Overruled: true}}}
	super := &constraint.Constraint{Kind: constraint.KindRange, Param: "p",
		Enum: []constraint.EnumValue{
			{Value: "on", Valid: true}, {Value: "off", Valid: true},
			{Value: "maybe", Valid: true}}}
	if !Matches(subset, truth) {
		t.Error("valid-value subset rejected")
	}
	if Matches(super, truth) {
		t.Error("superset with a wrong value accepted")
	}
}

func TestMatchesValueRelFlip(t *testing.T) {
	inferred := &constraint.Constraint{Kind: constraint.KindValueRel,
		Param: "min", Rel: constraint.OpLT, Peer: "max"}
	truth := &constraint.Constraint{Kind: constraint.KindValueRel,
		Param: "max", Rel: constraint.OpGT, Peer: "min"}
	if !Matches(inferred, truth) {
		t.Error("min < max must match max > min")
	}
	wrong := &constraint.Constraint{Kind: constraint.KindValueRel,
		Param: "max", Rel: constraint.OpLT, Peer: "min"}
	if Matches(inferred, wrong) {
		t.Error("inverted relation accepted")
	}
}

func TestScoreAndRecall(t *testing.T) {
	truth := cset(
		&constraint.Constraint{Kind: constraint.KindBasicType, Param: "a", Basic: constraint.BasicInt64},
		&constraint.Constraint{Kind: constraint.KindBasicType, Param: "b", Basic: constraint.BasicBool},
	)
	inferred := cset(
		&constraint.Constraint{Kind: constraint.KindBasicType, Param: "a", Basic: constraint.BasicInt64},  // correct
		&constraint.Constraint{Kind: constraint.KindBasicType, Param: "b", Basic: constraint.BasicString}, // wrong
	)
	acc := Score(inferred, truth)[constraint.KindBasicType]
	if acc.Correct != 1 || acc.Total != 2 {
		t.Errorf("precision = %d/%d, want 1/2", acc.Correct, acc.Total)
	}
	rec := Recall(inferred, truth)[constraint.KindBasicType]
	if rec.Correct != 1 || rec.Total != 2 {
		t.Errorf("recall = %d/%d, want 1/2", rec.Correct, rec.Total)
	}
	if (Accuracy{}).Ratio() != -1 {
		t.Error("empty accuracy must report N/A (-1)")
	}
}

func TestInferRejectsBadAnnotations(t *testing.T) {
	_, err := Infer("x", map[string]string{"x.go": "package x\n"}, "{ bogus", nil, nil, DefaultOptions())
	if err == nil {
		t.Fatal("malformed annotation accepted")
	}
}

func TestInferRejectsBadSource(t *testing.T) {
	_, err := Infer("x", map[string]string{"x.go": "package x\nfunc {"}, "", nil, nil, DefaultOptions())
	if err == nil {
		t.Fatal("malformed source accepted")
	}
}
