package spex

import (
	"testing"

	"spex/internal/apispec"
	"spex/internal/constraint"
)

// miniCorpus exercises every constraint kind on one small system: a
// condensed version of the paper's Figure 3 patterns.
const miniCorpus = `package mini

import (
	"strings"
	"time"
)

type miniConfig struct {
	logFileSize   string
	stopwordFile  string
	udpPort       int64
	indexIntLen   int64
	fsync         bool
	commitSibs    int64
	minWordLen    int64
	maxWordLen    int64
	fileFormat    string
	maxMemFree    int64
	idleTimeout   int64
}

var conf = &miniConfig{}

type option struct {
	name string
	ptr  interface{}
}

var options = []option{
	{"log.filesize", &conf.logFileSize},
	{"ft_stopword_file", &conf.stopwordFile},
	{"udp_port", &conf.udpPort},
	{"index_intlen", &conf.indexIntLen},
	{"fsync", &conf.fsync},
	{"commit_siblings", &conf.commitSibs},
	{"ft_min_word_len", &conf.minWordLen},
	{"ft_max_word_len", &conf.maxWordLen},
	{"file_format", &conf.fileFormat},
	{"max_mem_free", &conf.maxMemFree},
	{"idle_timeout", &conf.idleTimeout},
}

func atoi(s string) int64 { return 0 }

func start(env *Env) error {
	// Figure 3(a): string transformed to a sized integer.
	size := int32(atoi(conf.logFileSize))
	_ = size
	// Figure 3(b): FILE semantic type.
	data, err := env.FS.ReadFile(conf.stopwordFile)
	if err != nil {
		return err
	}
	_ = data
	// Figure 3(c): PORT semantic type.
	if err := env.Net.Bind("udp", int(conf.udpPort), "mini"); err != nil {
		env.Log.Fatalf("FATAL: Cannot open ICP Port")
		return err
	}
	// Figure 3(d): data range with silent resets.
	if conf.indexIntLen < 4 {
		conf.indexIntLen = 4
	} else if conf.indexIntLen > 255 {
		conf.indexIntLen = 255
	}
	// Unit inference: seconds-scale timeout.
	time.Sleep(time.Duration(conf.idleTimeout) * time.Second)
	// Size unit: KB input multiplied into a byte API.
	allocBuffer(conf.maxMemFree * 1024)
	return nil
}

func allocBuffer(n int64) {}

// Figure 3(e): control dependency on fsync.
func recordCommit(env *Env) {
	if conf.fsync {
		wait(conf.commitSibs + 1)
	}
}

func wait(n int64) {}

// Figure 3(f): value relationship through a shared intermediate.
func fullTextSearch(word string) bool {
	length := int64(len(word))
	if length >= conf.minWordLen && length < conf.maxWordLen {
		return true
	}
	return false
}

// Case-sensitive enum (Figure 6a).
func applyFormat(env *Env) error {
	if conf.fileFormat == "Antelope" {
		return nil
	} else if conf.fileFormat == "Barracuda" {
		return nil
	}
	env.Log.Errorf("unknown file_format %q", conf.fileFormat)
	return errBad
}

var errBad error

type Env struct {
	FS  *FS
	Net *Net
	Log *Log
}
type FS struct{}

func (f *FS) ReadFile(path string) ([]byte, error) { return nil, nil }

type Net struct{}

func (n *Net) Bind(proto string, port int, owner string) error { return nil }

type Log struct{}

func (l *Log) Fatalf(f string, a ...interface{}) {}
func (l *Log) Errorf(f string, a ...interface{}) {}

var _ = strings.EqualFold
`

const miniAnnot = `{ @STRUCT = options
  @PAR = [option, 1]
  @VAR = [option, 2] }`

func inferMini(t *testing.T) *Result {
	t.Helper()
	res, err := Infer("mini", map[string]string{"mini.go": miniCorpus}, miniAnnot, nil, apispec.New(), DefaultOptions())
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	return res
}

func find(res *Result, kind constraint.Kind, param string) *constraint.Constraint {
	for _, c := range res.Set.Constraints {
		if c.Kind == kind && c.Param == param {
			return c
		}
	}
	return nil
}

func TestInferMappingCount(t *testing.T) {
	res := inferMini(t)
	if res.Params != 11 {
		t.Fatalf("mapped %d parameters, want 11", res.Params)
	}
	if res.LoA != 3 {
		t.Errorf("LoA = %d, want 3", res.LoA)
	}
	if res.Convention != "structure" {
		t.Errorf("convention = %q, want structure", res.Convention)
	}
}

func TestInferBasicTypeFirstCast(t *testing.T) {
	res := inferMini(t)
	c := find(res, constraint.KindBasicType, "log.filesize")
	if c == nil {
		t.Fatal("no basic-type constraint for log.filesize")
	}
	if c.Basic != constraint.BasicInt32 {
		t.Errorf("log.filesize basic type = %s, want int32 (first cast wins)", c.Basic)
	}
}

func TestInferSemanticFile(t *testing.T) {
	res := inferMini(t)
	c := find(res, constraint.KindSemanticType, "ft_stopword_file")
	if c == nil {
		t.Fatal("no semantic constraint for ft_stopword_file")
	}
	if c.Semantic != constraint.SemFile {
		t.Errorf("semantic = %s, want FILE", c.Semantic)
	}
}

func TestInferSemanticPort(t *testing.T) {
	res := inferMini(t)
	c := find(res, constraint.KindSemanticType, "udp_port")
	if c == nil {
		t.Fatal("no semantic constraint for udp_port")
	}
	if c.Semantic != constraint.SemPort {
		t.Errorf("semantic = %s, want PORT", c.Semantic)
	}
}

func TestInferRangeWithResets(t *testing.T) {
	res := inferMini(t)
	c := find(res, constraint.KindRange, "index_intlen")
	if c == nil {
		t.Fatal("no range constraint for index_intlen")
	}
	valid := c.ValidIntervals()
	if len(valid) != 1 {
		t.Fatalf("valid intervals = %v, want exactly one", c.Intervals)
	}
	if !valid[0].HasMin || valid[0].Min != 4 || !valid[0].HasMax || valid[0].Max != 255 {
		t.Errorf("valid interval = %s, want [4,255]", valid[0])
	}
}

func TestInferControlDependency(t *testing.T) {
	res := inferMini(t)
	c := find(res, constraint.KindControlDep, "commit_siblings")
	if c == nil {
		t.Fatal("no control dependency for commit_siblings")
	}
	if c.Peer != "fsync" {
		t.Errorf("dependency peer = %q, want fsync", c.Peer)
	}
	if c.Confidence < 0.75 {
		t.Errorf("confidence = %v, want >= 0.75", c.Confidence)
	}
}

func TestInferValueRelationship(t *testing.T) {
	res := inferMini(t)
	c := find(res, constraint.KindValueRel, "ft_max_word_len")
	if c == nil {
		t.Fatal("no value relationship for ft_max_word_len")
	}
	if c.Peer != "ft_min_word_len" || (c.Rel != constraint.OpGT && c.Rel != constraint.OpGE) {
		t.Errorf("relationship = %s, want ft_max_word_len > ft_min_word_len", c)
	}
}

func TestInferEnumCaseSensitive(t *testing.T) {
	res := inferMini(t)
	c := find(res, constraint.KindRange, "file_format")
	if c == nil {
		t.Fatal("no enum constraint for file_format")
	}
	var vals []string
	for _, e := range c.Enum {
		if e.Valid && e.Value != "*" {
			vals = append(vals, e.Value)
		}
	}
	if len(vals) != 2 {
		t.Errorf("enum valid values = %v, want [Antelope Barracuda]", vals)
	}
	if !c.CaseKnown || !c.CaseSensitive {
		t.Errorf("case: known=%v sensitive=%v, want known+sensitive", c.CaseKnown, c.CaseSensitive)
	}
}

func TestInferUnits(t *testing.T) {
	res := inferMini(t)
	c := find(res, constraint.KindSemanticType, "idle_timeout")
	if c == nil {
		t.Fatal("no semantic constraint for idle_timeout")
	}
	if c.Unit != constraint.UnitSecond {
		t.Errorf("idle_timeout unit = %q, want s", c.Unit)
	}
	c = find(res, constraint.KindSemanticType, "max_mem_free")
	if c == nil {
		t.Fatal("no semantic constraint for max_mem_free")
	}
	if c.Unit != constraint.UnitKB {
		t.Errorf("max_mem_free unit = %q, want KB (byte API after *1024)", c.Unit)
	}
}

func TestInferUnsafeAPI(t *testing.T) {
	res := inferMini(t)
	found := false
	for _, u := range res.Unsafe {
		if u.Param == "log.filesize" && u.API == "atoi" {
			found = true
		}
	}
	if !found {
		t.Errorf("unsafe-API use of atoi on log.filesize not detected: %+v", res.Unsafe)
	}
}
