// Package confgen implements SPEX-INJ's misconfiguration generation
// (paper §3.1, Table 2): for every inferred constraint it produces
// configuration errors that intentionally violate it. Every generation rule
// is a plug-in registered per constraint kind, so the rule set can be
// extended for customized (e.g. proprietary) data types.
package confgen

import (
	"fmt"
	"sort"
	"strings"

	"spex/internal/conffile"
	"spex/internal/constraint"
)

// EnvActionKind enumerates environment manipulations that accompany an
// injected value (e.g. occupying the port the parameter names, Figure 5c).
type EnvActionKind int

const (
	// EnvOccupyPort binds the port in the virtual network before the
	// target starts.
	EnvOccupyPort EnvActionKind = iota
	// EnvMakeDir creates a directory at the given path (to inject "a
	// directory where a file is expected", Figure 5b).
	EnvMakeDir
	// EnvMakeUnreadable creates the file with no read permission.
	EnvMakeUnreadable
	// EnvEnsureMissing guarantees the path does not exist.
	EnvEnsureMissing
)

// EnvAction is one pre-start environment manipulation.
type EnvAction struct {
	Kind EnvActionKind
	Path string
	Port int
}

// Misconf is one generated misconfiguration: one or several erroneous
// parameter values violating a specific constraint.
type Misconf struct {
	ID     string
	Param  string
	Rule   string
	Values map[string]string
	Env    []EnvAction
	// Violates is the constraint this misconfiguration violates.
	Violates *constraint.Constraint
	// Description explains the intent for error reports.
	Description string
}

// Generator produces misconfigurations for one constraint. The template
// provides current/default values for correlated parameters.
type Generator func(c *constraint.Constraint, tmpl *conffile.File) []Misconf

// Registry maps constraint kinds to generation plug-ins.
type Registry struct {
	rules map[constraint.Kind][]namedGen
}

type namedGen struct {
	name string
	gen  Generator
}

// NewRegistry returns a registry loaded with the standard Table 2 rules.
func NewRegistry() *Registry {
	r := &Registry{rules: make(map[constraint.Kind][]namedGen)}
	r.Register(constraint.KindBasicType, "basic-type-violation", genBasicType)
	r.Register(constraint.KindSemanticType, "semantic-type-violation", genSemanticType)
	r.Register(constraint.KindRange, "range-violation", genRange)
	r.Register(constraint.KindControlDep, "control-dep-violation", genControlDep)
	r.Register(constraint.KindValueRel, "value-rel-violation", genValueRel)
	return r
}

// Register adds a generation plug-in for a constraint kind.
func (r *Registry) Register(k constraint.Kind, name string, g Generator) {
	r.rules[k] = append(r.rules[k], namedGen{name: name, gen: g})
}

// RuleNames lists registered rule names per kind (Table 2 rendering).
func (r *Registry) RuleNames() map[constraint.Kind][]string {
	out := make(map[constraint.Kind][]string)
	for k, gens := range r.rules {
		for _, g := range gens {
			out[k] = append(out[k], g.name)
		}
	}
	return out
}

// Generate produces all misconfigurations for a constraint set against a
// template configuration, deterministically ordered.
func (r *Registry) Generate(set *constraint.Set, tmpl *conffile.File) []Misconf {
	var out []Misconf
	for _, c := range set.Constraints {
		for _, ng := range r.rules[c.Kind] {
			ms := ng.gen(c, tmpl)
			for i := range ms {
				if ms[i].Rule == "" {
					ms[i].Rule = ng.name
				}
				if ms[i].Param == "" {
					ms[i].Param = c.Param
				}
				if ms[i].Violates == nil {
					ms[i].Violates = c
				}
				ms[i].ID = fmt.Sprintf("%s#%s#%d", c.Param, ms[i].Rule, i)
				out = append(out, ms[i])
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func single(param, value, desc string) Misconf {
	return Misconf{Param: param, Values: map[string]string{param: value}, Description: desc}
}

// --- Basic-type rule: values with invalid basic types (Figure 5a). ---

func genBasicType(c *constraint.Constraint, _ *conffile.File) []Misconf {
	var out []Misconf
	switch {
	case c.Basic.Numeric():
		out = append(out, single(c.Param, "fast", "non-numeric value for a numeric parameter"))
		if max, ok := c.Basic.MaxValue(); ok && c.Basic.Bits() <= 32 {
			out = append(out, single(c.Param, fmt.Sprintf("%d", max+1+4294967295),
				fmt.Sprintf("overflows the %d-bit representation", c.Basic.Bits())))
		}
		out = append(out, single(c.Param, "9G", "unit-suffixed number for a plain numeric parameter"))
		if !c.Basic.Signed() {
			out = append(out, single(c.Param, "-1", "negative value for an unsigned parameter"))
		}
	case c.Basic == constraint.BasicBool:
		out = append(out, single(c.Param, "maybe", "non-boolean value for a boolean parameter"))
	case c.Basic == constraint.BasicFloat32 || c.Basic == constraint.BasicFloat64:
		out = append(out, single(c.Param, "fast", "non-numeric value for a float parameter"))
	}
	return out
}

// --- Semantic-type rule: invalid values specific to each semantic type
// (Figure 5b/5c). ---

func genSemanticType(c *constraint.Constraint, tmpl *conffile.File) []Misconf {
	var out []Misconf
	switch c.Semantic {
	case constraint.SemFile:
		out = append(out,
			Misconf{Values: map[string]string{c.Param: "/nonexistent/spexinj.missing"},
				Env:         []EnvAction{{Kind: EnvEnsureMissing, Path: "/nonexistent/spexinj.missing"}},
				Description: "path that does not exist"},
			Misconf{Values: map[string]string{c.Param: "/injected/dirpath"},
				Env:         []EnvAction{{Kind: EnvMakeDir, Path: "/injected/dirpath"}},
				Description: "a directory path where a file is expected"},
			Misconf{Values: map[string]string{c.Param: "/injected/unreadable.dat"},
				Env:         []EnvAction{{Kind: EnvMakeUnreadable, Path: "/injected/unreadable.dat"}},
				Description: "a file without read permission"},
		)
	case constraint.SemDirectory:
		out = append(out,
			Misconf{Values: map[string]string{c.Param: "/nonexistent/spexinj.dir"},
				Env:         []EnvAction{{Kind: EnvEnsureMissing, Path: "/nonexistent/spexinj.dir"}},
				Description: "directory that does not exist"},
		)
	case constraint.SemPort:
		port := 0
		if def, ok := tmpl.Get(c.Param); ok {
			fmt.Sscanf(def, "%d", &port)
		}
		if port == 0 {
			port = 4101
		}
		out = append(out,
			Misconf{Values: map[string]string{c.Param: fmt.Sprintf("%d", port)},
				Env:         []EnvAction{{Kind: EnvOccupyPort, Port: port}},
				Description: "an already-occupied port"},
			single(c.Param, "70000", "port outside the 16-bit range"),
			single(c.Param, "80", "privileged port for an unprivileged process"),
		)
	case constraint.SemIPAddr:
		out = append(out,
			single(c.Param, "999.1.1.1", "octet out of range"),
			single(c.Param, "not.an.ip.addr", "not an IP address"),
		)
	case constraint.SemHost:
		out = append(out, single(c.Param, "bad host!", "illegal characters in host name"))
	case constraint.SemUser:
		out = append(out, single(c.Param, "no_such_user_xx", "unknown user name"))
	case constraint.SemGroup:
		out = append(out, single(c.Param, "no_such_group_xx", "unknown group name"))
	case constraint.SemTimeout:
		out = append(out, single(c.Param, "-5", "negative timeout"))
	case constraint.SemSize:
		out = append(out, single(c.Param, "-4096", "negative size"))
		if c.Unit != constraint.UnitNone && c.Unit != constraint.UnitByte {
			// Unit-confusion injection: a value reasonable in bytes is
			// pathological in KB/MB (unit-inconsistency vulnerability).
			out = append(out, single(c.Param, "1073741824",
				fmt.Sprintf("byte-scale value for a parameter configured in %s", c.Unit)))
		}
	case constraint.SemCount:
		out = append(out, single(c.Param, "1000000", "pathologically large count"))
	case constraint.SemPerm:
		out = append(out, single(c.Param, "999", "invalid permission mask"))
	case constraint.SemInitiator:
		// The Figure 1 case: initiator names allow only lowercase.
		out = append(out, single(c.Param, "iqn.2013-01.com.example:TARGET",
			"uppercase letters in an initiator name"))
	}
	return out
}

// --- Range rule: out-of-range values, exactly covering in and out of the
// specific range (Figure 5d). ---

func genRange(c *constraint.Constraint, tmpl *conffile.File) []Misconf {
	var out []Misconf
	if len(c.Enum) > 0 {
		out = append(out, single(c.Param, "spexbogus", "value outside the accepted list"))
		// Case-flipped valid value: likely user mistake when values are
		// case sensitive (Figure 6a).
		for _, ev := range c.Enum {
			if ev.Valid && ev.Value != "*" && c.CaseKnown && c.CaseSensitive {
				flipped := flipCase(ev.Value)
				if flipped != ev.Value {
					out = append(out, single(c.Param, flipped, "case-flipped spelling of an accepted value"))
					break
				}
			}
		}
		// Common boolean synonyms (the Squid silent-overruling case,
		// Figure 6c).
		if hasValue(c.Enum, "on") || hasValue(c.Enum, "off") {
			out = append(out, single(c.Param, "yes", `"yes" where the parser only accepts on/off`))
			out = append(out, single(c.Param, "enable", `"enable" where the parser only accepts on/off`))
		}
		return out
	}
	for _, iv := range c.Intervals {
		if iv.Valid {
			continue
		}
		// Inject a representative of each invalid interval.
		v := samplePointForInjection(iv)
		out = append(out, single(c.Param, fmt.Sprintf("%d", v),
			fmt.Sprintf("value in the invalid range %s", iv)))
	}
	// Also straddle the boundaries of the valid ranges.
	for _, iv := range c.ValidIntervals() {
		if iv.HasMin {
			out = append(out, single(c.Param, fmt.Sprintf("%d", iv.Min-1), "just below the valid range"))
		}
		if iv.HasMax {
			out = append(out, single(c.Param, fmt.Sprintf("%d", iv.Max+1), "just above the valid range"))
		}
	}
	return dedupe(out)
}

func samplePointForInjection(iv constraint.Interval) int64 {
	switch {
	case iv.HasMin && iv.HasMax:
		return iv.Min + (iv.Max-iv.Min)/2
	case iv.HasMin:
		return iv.Min + 44 // representative deep in the open range
	case iv.HasMax:
		return iv.Max - 44
	default:
		return 0
	}
}

func dedupe(in []Misconf) []Misconf {
	seen := map[string]bool{}
	var out []Misconf
	for _, m := range in {
		k := m.Values[m.Param]
		if k == "" {
			for p, v := range m.Values {
				k += p + "=" + v + ";"
			}
		}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, m)
	}
	return out
}

func hasValue(evs []constraint.EnumValue, v string) bool {
	for _, e := range evs {
		if e.Value == v {
			return true
		}
	}
	return false
}

func flipCase(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
			b.WriteRune(r - 32)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + 32)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// --- Control-dependency rule: generate (P ⋄ V) ∧ Q for (P,V,⋄) → Q
// (Figure 5e): violate the condition on P while explicitly setting Q. ---

func genControlDep(c *constraint.Constraint, tmpl *conffile.File) []Misconf {
	peerDefault, _ := tmpl.Get(c.Peer)
	pViol, ok := violateCond(c.Cond, c.Value, peerDefault)
	if !ok {
		return nil
	}
	qVal, ok := tmpl.Get(c.Param)
	if !ok || qVal == "" {
		qVal = "5"
	}
	return []Misconf{{
		Param: c.Param,
		Values: map[string]string{
			c.Peer:  pViol,
			c.Param: qVal,
		},
		Description: fmt.Sprintf("set %q while violating its dependency on %q", c.Param, c.Peer),
	}}
}

// violateCond produces a value for P that makes "P cond V" false. Boolean
// conditions are expressed in the target's configuration dialect (on/off
// or yes/no, learned from the template's current value) regardless of the
// source-level spelling (true/false).
func violateCond(cond constraint.Op, value, peerDefault string) (string, bool) {
	bTrue, bFalse := "on", "off"
	switch peerDefault {
	case "yes", "no":
		bTrue, bFalse = "yes", "no"
	case "true", "false":
		bTrue, bFalse = "true", "false"
	}
	switch value {
	case "true", "on", "1", "yes":
		if cond == constraint.OpEQ {
			return bFalse, true
		}
		return bTrue, true
	case "false", "off", "no":
		if cond == constraint.OpEQ {
			return bTrue, true
		}
		return bFalse, true
	}
	var n int64
	if _, err := fmt.Sscanf(value, "%d", &n); err == nil {
		switch cond {
		case constraint.OpEQ:
			return fmt.Sprintf("%d", n+1), true
		case constraint.OpNE:
			return value, true
		case constraint.OpGT, constraint.OpGE:
			return fmt.Sprintf("%d", n-1), true
		case constraint.OpLT, constraint.OpLE:
			return fmt.Sprintf("%d", n+1), true
		}
	}
	// String-valued condition: any different string violates equality.
	if cond == constraint.OpEQ {
		return value + "_other", true
	}
	if cond == constraint.OpNE {
		return value, true
	}
	return "", false
}

// --- Value-relationship rule: invalid value relationships (Figure 5f). ---

func genValueRel(c *constraint.Constraint, _ *conffile.File) []Misconf {
	// Constraint: Param Rel Peer. Choose values violating it.
	var pv, qv string
	switch c.Rel {
	case constraint.OpGT, constraint.OpGE:
		pv, qv = "10", "25" // Param=10 not > Peer=25
	case constraint.OpLT, constraint.OpLE:
		pv, qv = "25", "10"
	case constraint.OpEQ:
		pv, qv = "10", "25"
	case constraint.OpNE:
		pv, qv = "10", "10"
	default:
		return nil
	}
	return []Misconf{{
		Param:       c.Param,
		Values:      map[string]string{c.Param: pv, c.Peer: qv},
		Description: fmt.Sprintf("violate %q %s %q", c.Param, c.Rel, c.Peer),
	}}
}
