package confgen

import (
	"strings"
	"testing"

	"spex/internal/conffile"
	"spex/internal/constraint"
)

func tmpl(t *testing.T, src string) *conffile.File {
	t.Helper()
	f, err := conffile.Parse(src, conffile.SyntaxEquals)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func gen(t *testing.T, c *constraint.Constraint, cfg string) []Misconf {
	t.Helper()
	set := constraint.NewSet("t")
	set.Add(c)
	return NewRegistry().Generate(set, tmpl(t, cfg))
}

func values(ms []Misconf, param string) []string {
	var out []string
	for _, m := range ms {
		if v, ok := m.Values[param]; ok {
			out = append(out, v)
		}
	}
	return out
}

func TestBasicTypeNumeric(t *testing.T) {
	ms := gen(t, &constraint.Constraint{
		Kind: constraint.KindBasicType, Param: "size", Basic: constraint.BasicInt32,
	}, "size = 10\n")
	vals := values(ms, "size")
	wantSubstrings := []string{"fast", "9G"}
	for _, w := range wantSubstrings {
		found := false
		for _, v := range vals {
			if v == w {
				found = true
			}
		}
		if !found {
			t.Errorf("missing %q injection: %v", w, vals)
		}
	}
	// 32-bit overflow value present.
	overflow := false
	for _, v := range vals {
		if len(v) > 9 {
			overflow = true
		}
	}
	if !overflow {
		t.Errorf("no overflow injection for int32: %v", vals)
	}
}

func TestBasicTypeUnsignedGetsNegative(t *testing.T) {
	ms := gen(t, &constraint.Constraint{
		Kind: constraint.KindBasicType, Param: "n", Basic: constraint.BasicUint16,
	}, "n = 1\n")
	found := false
	for _, v := range values(ms, "n") {
		if v == "-1" {
			found = true
		}
	}
	if !found {
		t.Error("unsigned parameter needs a negative injection")
	}
}

func TestBasicTypeBool(t *testing.T) {
	ms := gen(t, &constraint.Constraint{
		Kind: constraint.KindBasicType, Param: "b", Basic: constraint.BasicBool,
	}, "b = on\n")
	if vals := values(ms, "b"); len(vals) != 1 || vals[0] != "maybe" {
		t.Errorf("bool injections = %v", vals)
	}
}

func TestSemanticFile(t *testing.T) {
	ms := gen(t, &constraint.Constraint{
		Kind: constraint.KindSemanticType, Param: "f", Semantic: constraint.SemFile,
	}, "f = /etc/x\n")
	if len(ms) != 3 {
		t.Fatalf("FILE injections = %d, want 3 (missing/dir/unreadable)", len(ms))
	}
	kinds := map[EnvActionKind]bool{}
	for _, m := range ms {
		for _, a := range m.Env {
			kinds[a.Kind] = true
		}
	}
	for _, k := range []EnvActionKind{EnvEnsureMissing, EnvMakeDir, EnvMakeUnreadable} {
		if !kinds[k] {
			t.Errorf("env action %d missing", k)
		}
	}
}

func TestSemanticPortUsesTemplateDefault(t *testing.T) {
	ms := gen(t, &constraint.Constraint{
		Kind: constraint.KindSemanticType, Param: "port", Semantic: constraint.SemPort,
	}, "port = 3130\n")
	var occupied *Misconf
	for i := range ms {
		for _, a := range ms[i].Env {
			if a.Kind == EnvOccupyPort {
				occupied = &ms[i]
				if a.Port != 3130 {
					t.Errorf("occupied port = %d, want the template's 3130", a.Port)
				}
			}
		}
	}
	if occupied == nil {
		t.Fatal("no occupied-port injection")
	}
	vals := values(ms, "port")
	has70000 := false
	for _, v := range vals {
		if v == "70000" {
			has70000 = true
		}
	}
	if !has70000 {
		t.Errorf("no out-of-range port injection: %v", vals)
	}
}

func TestSemanticInitiator(t *testing.T) {
	ms := gen(t, &constraint.Constraint{
		Kind: constraint.KindSemanticType, Param: "iname", Semantic: constraint.SemInitiator,
	}, "iname = iqn.x\n")
	if len(ms) != 1 || !strings.Contains(ms[0].Values["iname"], "TARGET") {
		t.Errorf("initiator injection = %+v", ms)
	}
}

func TestRangeNumericBoundaries(t *testing.T) {
	ms := gen(t, &constraint.Constraint{
		Kind: constraint.KindRange, Param: "r",
		Intervals: []constraint.Interval{
			{HasMax: true, Max: 3, Valid: false},
			{HasMin: true, Min: 4, HasMax: true, Max: 255, Valid: true},
			{HasMin: true, Min: 256, Valid: false},
		},
	}, "r = 10\n")
	vals := values(ms, "r")
	want := map[string]bool{"3": false, "256": false}
	for _, v := range vals {
		if _, ok := want[v]; ok {
			want[v] = true
		}
	}
	for v, seen := range want {
		if !seen {
			t.Errorf("boundary value %s not generated (got %v)", v, vals)
		}
	}
}

func TestRangeEnumInjections(t *testing.T) {
	ms := gen(t, &constraint.Constraint{
		Kind: constraint.KindRange, Param: "e",
		Enum: []constraint.EnumValue{
			{Value: "on", Valid: true}, {Value: "off", Valid: true},
		},
		CaseKnown: true, CaseSensitive: true,
	}, "e = on\n")
	vals := values(ms, "e")
	want := []string{"spexbogus", "ON", "yes", "enable"}
	for _, w := range want {
		found := false
		for _, v := range vals {
			if v == w {
				found = true
			}
		}
		if !found {
			t.Errorf("enum injection %q missing: %v", w, vals)
		}
	}
}

func TestControlDepViolation(t *testing.T) {
	ms := gen(t, &constraint.Constraint{
		Kind: constraint.KindControlDep, Param: "q", Peer: "p",
		Cond: constraint.OpEQ, Value: "true",
	}, "p = on\nq = 7\n")
	if len(ms) != 1 {
		t.Fatalf("dep injections = %d", len(ms))
	}
	m := ms[0]
	if m.Values["p"] != "off" {
		t.Errorf("peer violation = %q, want off", m.Values["p"])
	}
	if m.Values["q"] != "7" {
		t.Errorf("dependent kept at %q, want the template default 7", m.Values["q"])
	}
}

func TestControlDepYesNoDialect(t *testing.T) {
	ms := gen(t, &constraint.Constraint{
		Kind: constraint.KindControlDep, Param: "q", Peer: "p",
		Cond: constraint.OpEQ, Value: "true",
	}, "p = yes\nq = 7\n")
	if ms[0].Values["p"] != "no" {
		t.Errorf("yes/no dialect: violation = %q, want no", ms[0].Values["p"])
	}
}

func TestControlDepNumeric(t *testing.T) {
	ms := gen(t, &constraint.Constraint{
		Kind: constraint.KindControlDep, Param: "q", Peer: "p",
		Cond: constraint.OpGT, Value: "0",
	}, "p = 3130\nq = 1\n")
	if ms[0].Values["p"] != "-1" {
		t.Errorf("violating p > 0 gave %q, want -1", ms[0].Values["p"])
	}
}

func TestValueRelViolation(t *testing.T) {
	ms := gen(t, &constraint.Constraint{
		Kind: constraint.KindValueRel, Param: "max", Rel: constraint.OpGT, Peer: "min",
	}, "min = 4\nmax = 84\n")
	if len(ms) != 1 {
		t.Fatalf("rel injections = %d", len(ms))
	}
	if ms[0].Values["max"] != "10" || ms[0].Values["min"] != "25" {
		t.Errorf("rel violation = %v", ms[0].Values)
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	set := constraint.NewSet("t")
	set.Add(&constraint.Constraint{Kind: constraint.KindBasicType, Param: "a", Basic: constraint.BasicInt64})
	set.Add(&constraint.Constraint{Kind: constraint.KindSemanticType, Param: "f", Semantic: constraint.SemFile})
	cfg := tmpl(t, "a = 1\nf = /x\n")
	r := NewRegistry()
	a := r.Generate(set, cfg)
	b := r.Generate(set, cfg)
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("order differs at %d: %s vs %s", i, a[i].ID, b[i].ID)
		}
	}
}

func TestCustomPlugin(t *testing.T) {
	r := NewRegistry()
	r.Register(constraint.KindBasicType, "custom-rule",
		func(c *constraint.Constraint, _ *conffile.File) []Misconf {
			return []Misconf{{Values: map[string]string{c.Param: "CUSTOM"}}}
		})
	set := constraint.NewSet("t")
	set.Add(&constraint.Constraint{Kind: constraint.KindBasicType, Param: "x", Basic: constraint.BasicBool})
	ms := r.Generate(set, tmpl(t, "x = on\n"))
	found := false
	for _, m := range ms {
		if m.Rule == "custom-rule" && m.Values["x"] == "CUSTOM" {
			found = true
		}
	}
	if !found {
		t.Error("custom plug-in did not run")
	}
	names := r.RuleNames()[constraint.KindBasicType]
	if len(names) != 2 {
		t.Errorf("rule names = %v", names)
	}
}
