package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"spex/internal/campaignstore"
	"spex/internal/confgen"
	"spex/internal/constraint"
	"spex/internal/inject"
)

// BenchmarkMergeThroughput folds four shard stores (10k outcomes each,
// disjoint keys plus a 5% duplicated overlap) into a fresh destination
// per iteration — the spexmerge hot path. Reported metrics: outcomes/s
// of merged output and the process's peak RSS, which must stay bounded
// because the k-way merge streams record-by-record instead of
// materializing four shard maps.
func BenchmarkMergeThroughput(b *testing.B) {
	const shards = 4
	const perShard = 10000
	c := &constraint.Constraint{Kind: constraint.KindBasicType, Param: "p", Basic: constraint.BasicString}
	set := constraint.NewSet("benchsys")
	set.Add(c)
	opts := inject.DefaultOptions()
	stamp := time.Unix(1700000000, 0).UTC()

	root := b.TempDir()
	dirs := make([]string, shards)
	for s := 0; s < shards; s++ {
		dirs[s] = filepath.Join(root, fmt.Sprintf("shard%d", s))
		if err := os.MkdirAll(dirs[s], 0o755); err != nil {
			b.Fatal(err)
		}
		store, err := campaignstore.Open(dirs[s])
		if err != nil {
			b.Fatal(err)
		}
		outcomes := make(map[string]inject.Outcome, perShard+perShard/20)
		add := func(id string) {
			m := confgen.Misconf{
				ID: id, Param: "p", Rule: "null",
				Values: map[string]string{"p": "bad"}, Violates: c,
			}
			outcomes[inject.CacheKey(m)] = inject.Outcome{
				Misconf: m, Reaction: inject.Reaction(len(outcomes) % 4), SimCost: 3,
				LogDump: "ERR request failed\n",
			}
		}
		for i := 0; i < perShard; i++ {
			add(fmt.Sprintf("s%d-m%06d", s, i))
		}
		// Overlap with the next shard: freshest-wins has work to do.
		for i := 0; i < perShard/20; i++ {
			add(fmt.Sprintf("dup-m%06d", (s*perShard/20)+i%(perShard/20)))
		}
		snap := campaignstore.New("benchsys", set, opts, outcomes)
		snap.SavedAt = stamp.Add(time.Duration(s) * time.Minute)
		if err := saveLocked(b, store, snap); err != nil {
			b.Fatal(err)
		}
	}

	b.ResetTimer()
	var merged int
	for i := 0; i < b.N; i++ {
		dst := filepath.Join(root, fmt.Sprintf("merged%d", i))
		if err := os.MkdirAll(dst, 0o755); err != nil {
			b.Fatal(err)
		}
		stats, err := mergeInto(b, dst, dirs)
		if err != nil {
			b.Fatal(err)
		}
		merged = 0
		for _, st := range stats {
			merged += st.Outcomes
		}
		b.StopTimer()
		os.RemoveAll(dst)
		b.StartTimer()
	}
	b.ReportMetric(float64(merged)*float64(b.N)/b.Elapsed().Seconds(), "outcomes/s")
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err == nil {
		b.ReportMetric(float64(ru.Maxrss)/1024, "peak-rss-MB")
	}
}
