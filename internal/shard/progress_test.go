package shard

import (
	"sync"
	"testing"
)

func TestHubFansOutToEverySubscriber(t *testing.T) {
	h := NewHub()
	a, cancelA := h.Subscribe(16)
	b, cancelB := h.Subscribe(16)
	defer cancelA()
	defer cancelB()

	var wg sync.WaitGroup
	counts := make([]int, 2)
	for i, ch := range []<-chan Progress{a, b} {
		wg.Add(1)
		go func(i int, ch <-chan Progress) {
			defer wg.Done()
			for range ch {
				counts[i]++
			}
		}(i, ch)
	}
	for i := 0; i < 10; i++ {
		h.Emit(Progress{Done: i + 1, Total: 10})
	}
	h.Close()
	wg.Wait()
	if counts[0] != 10 || counts[1] != 10 {
		t.Fatalf("subscribers saw %d/%d events, want 10/10", counts[0], counts[1])
	}
}

func TestHubDropsOldestWhenSubscriberLags(t *testing.T) {
	h := NewHub()
	ch, cancel := h.Subscribe(2)
	defer cancel()
	// Nobody reads: the 2-slot buffer keeps only the freshest events.
	for i := 1; i <= 50; i++ {
		h.Emit(Progress{Done: i, Total: 50})
	}
	h.Close()
	var got []int
	for p := range ch {
		got = append(got, p.Done)
	}
	if len(got) != 2 {
		t.Fatalf("lagging subscriber buffered %d events, want 2", len(got))
	}
	// The final event must have survived — a display converges on the
	// freshest count, not an arbitrary stale one.
	if got[len(got)-1] != 50 {
		t.Fatalf("last delivered event is %d, want the freshest (50)", got[len(got)-1])
	}
}

// TestHubSlowSubscriberDropAccounting pins the observability contract
// of the drop-oldest policy: every event shed for a lagging subscriber
// increments the registry's dropped-events counter, while emitted
// events and the subscriber gauge track the fan-out itself. Deltas use
// >= where other shuffled tests share the process-global registry.
func TestHubSlowSubscriberDropAccounting(t *testing.T) {
	const emits = 50
	droppedBefore := mHubDropped.Value()
	eventsBefore := mHubEvents.Value()

	h := NewHub()
	slow, cancelSlow := h.Subscribe(1) // never read until the end
	fast, cancelFast := h.Subscribe(emits)
	defer cancelSlow()
	defer cancelFast()
	for i := 1; i <= emits; i++ {
		h.Emit(Progress{Done: i, Total: emits})
	}
	h.Close()

	if d := mHubEvents.Value() - eventsBefore; d < emits {
		t.Errorf("emitted-events delta = %d, want >= %d", d, emits)
	}
	// The slow subscriber's 1-slot buffer forces a drop on every emit
	// after the first; the fast subscriber forces none, so the counter
	// moved by exactly the slow subscriber's losses (modulo concurrent
	// tests, hence >=).
	if d := mHubDropped.Value() - droppedBefore; d < emits-1 {
		t.Errorf("dropped-events delta = %d, want >= %d", d, emits-1)
	}
	var kept []int
	for p := range slow {
		kept = append(kept, p.Done)
	}
	if len(kept) != 1 || kept[0] != emits {
		t.Fatalf("slow subscriber kept %v, want just the freshest event (%d)", kept, emits)
	}
	n := 0
	for range fast {
		n++
	}
	if n != emits {
		t.Fatalf("fast subscriber saw %d events, want all %d", n, emits)
	}
}

func TestHubCloseAndCancelAreIdempotent(t *testing.T) {
	h := NewHub()
	ch, cancel := h.Subscribe(1)
	cancel()
	cancel() // second cancel must not panic or double-close
	if _, ok := <-ch; ok {
		t.Fatal("cancelled subscriber channel still open")
	}
	h.Close()
	h.Close()
	h.Emit(Progress{Done: 1, Total: 1}) // no-op after Close

	// Subscribing after Close yields an already-closed channel.
	late, lateCancel := h.Subscribe(1)
	lateCancel()
	if _, ok := <-late; ok {
		t.Fatal("post-Close subscription channel still open")
	}
}
