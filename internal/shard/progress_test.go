package shard

import (
	"sync"
	"testing"
)

func TestHubFansOutToEverySubscriber(t *testing.T) {
	h := NewHub()
	a, cancelA := h.Subscribe(16)
	b, cancelB := h.Subscribe(16)
	defer cancelA()
	defer cancelB()

	var wg sync.WaitGroup
	counts := make([]int, 2)
	for i, ch := range []<-chan Progress{a, b} {
		wg.Add(1)
		go func(i int, ch <-chan Progress) {
			defer wg.Done()
			for range ch {
				counts[i]++
			}
		}(i, ch)
	}
	for i := 0; i < 10; i++ {
		h.Emit(Progress{Done: i + 1, Total: 10})
	}
	h.Close()
	wg.Wait()
	if counts[0] != 10 || counts[1] != 10 {
		t.Fatalf("subscribers saw %d/%d events, want 10/10", counts[0], counts[1])
	}
}

func TestHubDropsOldestWhenSubscriberLags(t *testing.T) {
	h := NewHub()
	ch, cancel := h.Subscribe(2)
	defer cancel()
	// Nobody reads: the 2-slot buffer keeps only the freshest events.
	for i := 1; i <= 50; i++ {
		h.Emit(Progress{Done: i, Total: 50})
	}
	h.Close()
	var got []int
	for p := range ch {
		got = append(got, p.Done)
	}
	if len(got) != 2 {
		t.Fatalf("lagging subscriber buffered %d events, want 2", len(got))
	}
	// The final event must have survived — a display converges on the
	// freshest count, not an arbitrary stale one.
	if got[len(got)-1] != 50 {
		t.Fatalf("last delivered event is %d, want the freshest (50)", got[len(got)-1])
	}
}

func TestHubCloseAndCancelAreIdempotent(t *testing.T) {
	h := NewHub()
	ch, cancel := h.Subscribe(1)
	cancel()
	cancel() // second cancel must not panic or double-close
	if _, ok := <-ch; ok {
		t.Fatal("cancelled subscriber channel still open")
	}
	h.Close()
	h.Close()
	h.Emit(Progress{Done: 1, Total: 1}) // no-op after Close

	// Subscribing after Close yields an already-closed channel.
	late, lateCancel := h.Subscribe(1)
	lateCancel()
	if _, ok := <-late; ok {
		t.Fatal("post-Close subscription channel still open")
	}
}
