package shard

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"spex/internal/campaignstore"
	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/constraint"
	"spex/internal/inject"
	"spex/internal/sim"
	"spex/internal/spex"
	"spex/internal/targets/httpd"
	"spex/internal/targets/ldapd"
)

// workloadFor infers a real target and generates its full
// misconfiguration list — the exact input the drivers feed the
// scheduler.
func workloadFor(t testing.TB, sys sim.System) Workload {
	t.Helper()
	res, err := spex.InferSystem(sys)
	if err != nil {
		t.Fatalf("infer %s: %v", sys.Name(), err)
	}
	tmpl, err := conffile.Parse(sys.DefaultConfig(), sys.Syntax())
	if err != nil {
		t.Fatalf("parse %s template: %v", sys.Name(), err)
	}
	return Workload{Sys: sys, Set: res.Set, Ms: confgen.NewRegistry().Generate(res.Set, tmpl)}
}

func TestInterleaveRoundRobin(t *testing.T) {
	got := Interleave([]int{3, 1, 2})
	want := []Task{
		{0, 0}, {1, 0}, {2, 0}, // round 0: every target
		{0, 1}, {2, 1}, // round 1: target 1 drained
		{0, 2}, // round 2: only target 0 left
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Interleave = %v, want %v", got, want)
	}
	if len(Interleave(nil)) != 0 {
		t.Error("Interleave(nil) should be empty")
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("2/4")
	if err != nil || p.Shard != 2 || p.Of != 4 || !p.Enabled() {
		t.Errorf("ParsePlan(2/4) = %v, %v", p, err)
	}
	if p.String() != "2/4" {
		t.Errorf("String() = %q", p.String())
	}
	if q, err := ParsePlan("1/1"); err != nil || q.Enabled() {
		t.Errorf("ParsePlan(1/1) = %v, %v (1/1 must parse but not partition)", q, err)
	}
	for _, bad := range []string{"", "2", "0/4", "5/4", "x/2", "1/x", "-1/2", "1/0"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) should fail", bad)
		}
	}
}

// TestPlanPartitionsDisjointAndComplete: every misconfiguration of a
// real workload belongs to exactly one shard, so N shard processes
// together execute the whole campaign with no overlap and no gap.
func TestPlanPartitionsDisjointAndComplete(t *testing.T) {
	w := workloadFor(t, ldapd.New())
	for _, n := range []int{2, 3, 7} {
		owners := 0
		for _, m := range w.Ms {
			c := 0
			for i := 1; i <= n; i++ {
				if (Plan{Shard: i, Of: n}).Owns(w.Sys.Name(), m) {
					c++
				}
			}
			if c != 1 {
				t.Fatalf("N=%d: misconf %s owned by %d shards, want exactly 1", n, m.ID, c)
			}
			owners += c
		}
		if owners != len(w.Ms) {
			t.Errorf("N=%d: %d assignments for %d misconfigurations", n, owners, len(w.Ms))
		}
		total := 0
		for i := 1; i <= n; i++ {
			total += len((Plan{Shard: i, Of: n}).Filter(w.Sys.Name(), w.Ms))
		}
		if total != len(w.Ms) {
			t.Errorf("N=%d: shard filters cover %d of %d misconfigurations", n, total, len(w.Ms))
		}
	}
}

// TestKeySetPlan: an explicit key-set plan owns exactly its listed
// keys, is Enabled even when empty, and BuildWorkloads under it
// filters the workload and vouches for the full campaign (Keep) the
// same way an i/N plan does — the contract the coordinator's leases
// compile to.
func TestKeySetPlan(t *testing.T) {
	sys := ldapd.New()
	res, err := spex.InferSystem(sys)
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := conffile.Parse(sys.DefaultConfig(), sys.Syntax())
	if err != nil {
		t.Fatal(err)
	}
	ms := confgen.NewRegistry().Generate(res.Set, tmpl)
	keys := map[string]bool{}
	for _, m := range ms[:3] {
		keys[GlobalKey(sys.Name(), inject.CacheKey(m))] = true
	}
	p := KeySetPlan(keys)
	if !p.Enabled() {
		t.Error("key-set plan must be Enabled")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate() = %v", err)
	}
	if got := p.Filter(sys.Name(), ms); len(got) != 3 {
		t.Errorf("Filter kept %d misconfigurations, want 3", len(got))
	}
	if p.Owns("othersystem", ms[0]) {
		t.Error("key-set plan owns a foreign system's key")
	}
	empty := KeySetPlan(map[string]bool{})
	if !empty.Enabled() || len(empty.Filter(sys.Name(), ms)) != 0 {
		t.Error("empty key-set plan must be enabled and own nothing")
	}

	ws, totals, err := BuildWorkloads([]sim.System{sys}, []*spex.Result{res}, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws[0].Ms) != 3 || totals[0] != len(ms) {
		t.Errorf("BuildWorkloads: %d owned of %d total, want 3 of %d", len(ws[0].Ms), totals[0], len(ms))
	}
	if len(ws[0].Keep) != len(ms) {
		t.Errorf("BuildWorkloads Keep vouches for %d keys, want the full campaign's %d", len(ws[0].Keep), len(ms))
	}
}

// TestOwnerConsistentWithPlan: the exported Owner helper (the
// coordinator's initial-assignment function) and Plan.Owns must agree,
// or a coordinated campaign would start from a different partition
// than a static -shard run.
func TestOwnerConsistentWithPlan(t *testing.T) {
	w := workloadFor(t, ldapd.New())
	for _, m := range w.Ms {
		o := Owner(w.Sys.Name(), m, 4)
		for i := 1; i <= 4; i++ {
			owns := (Plan{Shard: i, Of: 4}).Owns(w.Sys.Name(), m)
			if owns != (o == i-1) {
				t.Fatalf("Owner says shard %d, Plan %d/4 says owns=%v", o+1, i, owns)
			}
		}
	}
}

// TestRunGlobalMatchesPerTarget: the global cross-target scheduler must
// produce, per system, the identical report a standalone per-system
// campaign produces — interleaving changes utilization, never results.
func TestRunGlobalMatchesPerTarget(t *testing.T) {
	ws := []Workload{workloadFor(t, ldapd.New()), workloadFor(t, httpd.New())}
	ctx := context.Background()

	var want []*inject.Report
	for _, w := range ws {
		rep, err := inject.RunContext(ctx, w.Sys, w.Ms, inject.DefaultOptions())
		if err != nil {
			t.Fatalf("per-target %s: %v", w.Sys.Name(), err)
		}
		want = append(want, rep)
	}
	got, err := RunGlobal(ctx, ws, Options{Workers: 8, Inject: inject.DefaultOptions()})
	if err != nil {
		t.Fatalf("RunGlobal: %v", err)
	}
	for i := range ws {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%s: global report differs from per-target report", ws[i].Sys.Name())
		}
	}
}

// TestRunGlobalProgressAggregates: per-outcome events carry consistent
// aggregate and per-system counters, ending exactly at the totals.
func TestRunGlobalProgressAggregates(t *testing.T) {
	ws := []Workload{workloadFor(t, ldapd.New()), workloadFor(t, httpd.New())}
	total := len(ws[0].Ms) + len(ws[1].Ms)
	var events []Progress
	_, err := RunGlobal(context.Background(), ws, Options{
		Workers: 4, Inject: inject.DefaultOptions(),
		OnProgress: func(p Progress) { events = append(events, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != total {
		t.Fatalf("%d progress events for %d tasks", len(events), total)
	}
	for i, e := range events {
		if e.Done != i+1 || e.Total != total {
			t.Fatalf("event %d: aggregate %d/%d, want %d/%d", i, e.Done, e.Total, i+1, total)
		}
	}
	last := events[len(events)-1]
	if last.Done != last.Total {
		t.Errorf("final event %d/%d is not complete", last.Done, last.Total)
	}
}

// TestShardMergeMatchesUnsharded is the acceptance criterion: the same
// workload executed as 1, 2, and 4 separate shard campaigns, merged,
// yields a store fingerprint identical to the unsharded run's and a
// replayed report deeply equal to the unsharded replay.
func TestShardMergeMatchesUnsharded(t *testing.T) {
	sys := ldapd.New()
	w := workloadFor(t, sys)
	ctx := context.Background()
	opts := Options{Workers: 4, Inject: inject.DefaultOptions()}

	// Unsharded baseline: full campaign, then a 100%-replay run.
	usDir := t.TempDir()
	usStore, err := campaignstore.Open(usDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lockedCampaign(t, ctx, usStore, []Workload{{Sys: sys, Set: w.Set, Ms: w.Ms}}, opts); err != nil {
		t.Fatal(err)
	}
	usSnap, err := usStore.Load(sys.Name())
	if err != nil {
		t.Fatal(err)
	}
	usFP, err := usSnap.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	usReplay, err := lockedCampaign(t, ctx, usStore, []Workload{{Sys: sys, Set: w.Set, Ms: w.Ms}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := usReplay[0].Report.Replayed; got != len(w.Ms) {
		t.Fatalf("unsharded replay executed work: replayed %d of %d", got, len(w.Ms))
	}

	for _, n := range []int{1, 2, 4} {
		var dirs []string
		for i := 1; i <= n; i++ {
			plan := Plan{Shard: i, Of: n}
			dir := t.TempDir()
			store, err := campaignstore.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			sw := Workload{Sys: sys, Set: w.Set, Ms: plan.Filter(sys.Name(), w.Ms)}
			if _, err := lockedCampaign(t, ctx, store, []Workload{sw}, opts); err != nil {
				t.Fatalf("N=%d shard %d: %v", n, i, err)
			}
			dirs = append(dirs, dir)
		}
		mergedDir := t.TempDir()
		stats, err := mergeInto(t, mergedDir, dirs)
		if err != nil {
			t.Fatalf("N=%d merge: %v", n, err)
		}
		if len(stats) != 1 || stats[0].Outcomes != len(w.Ms) || stats[0].Duplicates != 0 {
			t.Fatalf("N=%d merge stats = %+v, want %d outcomes, 0 duplicates", n, stats, len(w.Ms))
		}
		mgStore, err := campaignstore.Open(mergedDir)
		if err != nil {
			t.Fatal(err)
		}
		mgSnap, err := mgStore.Load(sys.Name())
		if err != nil {
			t.Fatalf("N=%d: merged snapshot fails validation: %v", n, err)
		}
		mgFP, err := mgSnap.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if mgFP != usFP {
			t.Errorf("N=%d: merged store fingerprint %s != unsharded %s", n, mgFP, usFP)
		}
		mgReplay, err := lockedCampaign(t, ctx, mgStore, []Workload{{Sys: sys, Set: w.Set, Ms: w.Ms}}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := mgReplay[0].Report.Replayed; got != len(w.Ms) {
			t.Errorf("N=%d: merged replay re-executed work: replayed %d of %d", n, got, len(w.Ms))
		}
		if !reflect.DeepEqual(mgReplay[0].Report, usReplay[0].Report) {
			t.Errorf("N=%d: merged replay report differs from unsharded replay report", n)
		}
	}
}

// TestShardRefreshPreservesPeerOutcomes: re-running one shard against a
// merged store (Workload.Keep vouching for the full campaign's keys)
// must replay its own partition and carry the other shards' outcomes
// through the save, not prune them as stale.
func TestShardRefreshPreservesPeerOutcomes(t *testing.T) {
	sys := ldapd.New()
	w := workloadFor(t, sys)
	ctx := context.Background()
	opts := Options{Workers: 4, Inject: inject.DefaultOptions()}

	mergedDir := t.TempDir()
	var dirs []string
	for i := 1; i <= 2; i++ {
		plan := Plan{Shard: i, Of: 2}
		dir := t.TempDir()
		store, err := campaignstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		sw := Workload{Sys: sys, Set: w.Set, Ms: plan.Filter(sys.Name(), w.Ms)}
		if _, err := lockedCampaign(t, ctx, store, []Workload{sw}, opts); err != nil {
			t.Fatal(err)
		}
		dirs = append(dirs, dir)
	}
	if _, err := mergeInto(t, mergedDir, dirs); err != nil {
		t.Fatal(err)
	}
	mgStore, err := campaignstore.Open(mergedDir)
	if err != nil {
		t.Fatal(err)
	}

	// Refresh shard 1 against the merged store, vouching for every key.
	plan := Plan{Shard: 1, Of: 2}
	keep := make(map[string]bool, len(w.Ms))
	for _, m := range w.Ms {
		keep[inject.CacheKey(m)] = true
	}
	sw := Workload{Sys: sys, Set: w.Set, Ms: plan.Filter(sys.Name(), w.Ms), Keep: keep}
	runs, err := lockedCampaign(t, ctx, mgStore, []Workload{sw}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := runs[0].Report.Replayed; got != len(sw.Ms) {
		t.Errorf("shard refresh replayed %d of its %d outcomes", got, len(sw.Ms))
	}
	snap, err := mgStore.Load(sys.Name())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Outcomes) != len(w.Ms) {
		t.Errorf("after a shard-1 refresh the merged store holds %d outcomes, want the full campaign's %d (peer shard's work was pruned)",
			len(snap.Outcomes), len(w.Ms))
	}
}

// Synthetic snapshot fixtures for the merge validation tests.

func synthSet(params ...string) *constraint.Set {
	s := constraint.NewSet("synth")
	for _, p := range params {
		s.Add(&constraint.Constraint{Kind: constraint.KindBasicType, Param: p, Basic: constraint.BasicString})
	}
	return s
}

func synthMisconf(id string, c *constraint.Constraint) confgen.Misconf {
	return confgen.Misconf{ID: id, Param: c.Param,
		Values: map[string]string{c.Param: "bad"}, Violates: c}
}

func saveSnapshot(t *testing.T, dir string, set *constraint.Set, opts inject.Options, outcomes map[string]inject.Outcome, savedAt time.Time) {
	t.Helper()
	store, err := campaignstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := campaignstore.New("synth", set, opts, outcomes)
	snap.SavedAt = savedAt
	for k := range snap.Stamps {
		snap.Stamps[k] = savedAt
	}
	if err := saveLocked(t, store, snap); err != nil {
		t.Fatal(err)
	}
}

// TestMergeCarriedCopyNeverBeatsOwnersRetest: a shard refresh carries
// its peers' outcomes through its save (Workload.Keep) with their
// ORIGINAL per-key stamps, and Merge resolves duplicates by those
// stamps — so a later-saved snapshot holding a stale carried copy of a
// key must lose to the owning shard's earlier-saved but
// genuinely-fresher retest of that key.
func TestMergeCarriedCopyNeverBeatsOwnersRetest(t *testing.T) {
	set := synthSet("p", "q")
	opts := inject.DefaultOptions()
	mK := synthMisconf("mK", set.Constraints[0])
	mJ := synthMisconf("mJ", set.Constraints[1])
	keyK, keyJ := inject.CacheKey(mK), inject.CacheKey(mJ)
	stale := inject.Outcome{Misconf: mK, Reaction: inject.ReactionCrash}
	fresh := inject.Outcome{Misconf: mK, Reaction: inject.ReactionGood}
	t0 := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	t2, t3 := t0.Add(2*time.Hour), t0.Add(3*time.Hour)

	// Shard 2 (owner of K) retested K at t2.
	d2 := t.TempDir()
	saveSnapshot(t, d2, set, opts, map[string]inject.Outcome{keyK: fresh}, t2)

	// Shard 1 saved LATER (t3) with its own key J plus a stale carried
	// copy of K still stamped t0.
	d1 := t.TempDir()
	store1, err := campaignstore.Open(d1)
	if err != nil {
		t.Fatal(err)
	}
	snap1 := campaignstore.New("synth", set, opts, map[string]inject.Outcome{
		keyJ: {Misconf: mJ, Reaction: inject.ReactionTolerated},
		keyK: stale,
	})
	snap1.SavedAt = t3
	snap1.Stamps[keyJ] = t3
	snap1.Stamps[keyK] = t0 // carried, never re-validated by shard 1
	if err := saveLocked(t, store1, snap1); err != nil {
		t.Fatal(err)
	}

	mergedDir := t.TempDir()
	if _, err := mergeInto(t, mergedDir, []string{d1, d2}); err != nil {
		t.Fatal(err)
	}
	store, err := campaignstore.Open(mergedDir)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := store.Load("synth")
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Outcomes[keyK].Reaction; got != inject.ReactionGood {
		t.Errorf("merged K = %v: the stale carried copy (snapshot saved later) beat the owner's fresher retest", got)
	}
	if got := snap.Stamps[keyK]; !got.Equal(t2) {
		t.Errorf("merged K stamp = %v, want the owning retest's %v", got, t2)
	}
}

func TestMergeRejectsMixedOptions(t *testing.T) {
	set := synthSet("p")
	optimized := inject.DefaultOptions()
	naive := optimized
	naive.StopOnFirstFailure = false
	d1, d2 := t.TempDir(), t.TempDir()
	saveSnapshot(t, d1, set, optimized, map[string]inject.Outcome{}, time.Now().UTC())
	saveSnapshot(t, d2, set, naive, map[string]inject.Outcome{}, time.Now().UTC())
	_, err := mergeInto(t, t.TempDir(), []string{d1, d2})
	if err == nil || !strings.Contains(err.Error(), "options") {
		t.Errorf("merging mixed-options shards should fail on options, got %v", err)
	}
}

func TestMergeRejectsMixedConstraintSets(t *testing.T) {
	opts := inject.DefaultOptions()
	d1, d2 := t.TempDir(), t.TempDir()
	saveSnapshot(t, d1, synthSet("p"), opts, map[string]inject.Outcome{}, time.Now().UTC())
	saveSnapshot(t, d2, synthSet("p", "q"), opts, map[string]inject.Outcome{}, time.Now().UTC())
	_, err := mergeInto(t, t.TempDir(), []string{d1, d2})
	if err == nil || !strings.Contains(err.Error(), "constraint set") {
		t.Errorf("merging mixed-set shards should fail on the constraint set, got %v", err)
	}
}

func TestMergeFreshestWins(t *testing.T) {
	set := synthSet("p")
	opts := inject.DefaultOptions()
	c := set.Constraints[0]
	m := synthMisconf("m0", c)
	key := inject.CacheKey(m)
	older := inject.Outcome{Misconf: m, Reaction: inject.ReactionCrash}
	newer := inject.Outcome{Misconf: m, Reaction: inject.ReactionGood}
	t0 := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	t1 := t0.Add(time.Hour)

	// The fresher snapshot sits in the EARLIER source directory, so the
	// test distinguishes freshest-wins from last-directory-wins.
	d1, d2 := t.TempDir(), t.TempDir()
	saveSnapshot(t, d1, set, opts, map[string]inject.Outcome{key: newer}, t1)
	saveSnapshot(t, d2, set, opts, map[string]inject.Outcome{key: older}, t0)

	mergedDir := t.TempDir()
	stats, err := mergeInto(t, mergedDir, []string{d1, d2})
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Duplicates != 1 {
		t.Errorf("Duplicates = %d, want 1", stats[0].Duplicates)
	}
	store, err := campaignstore.Open(mergedDir)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := store.Load("synth")
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Outcomes[key].Reaction; got != inject.ReactionGood {
		t.Errorf("merged outcome reaction = %v, want the fresher snapshot's %v", got, inject.ReactionGood)
	}
}

// TestMergeEqualStampTieBreakDeterministic: when two shards carry the
// same key with exactly equal stamps, the winner must be a function of
// the shard directories (lexicographically greatest), not of the order
// the directories were passed to Merge.
func TestMergeEqualStampTieBreakDeterministic(t *testing.T) {
	set := synthSet("p")
	opts := inject.DefaultOptions()
	m := synthMisconf("m0", set.Constraints[0])
	key := inject.CacheKey(m)
	a := inject.Outcome{Misconf: m, Reaction: inject.ReactionCrash}
	b := inject.Outcome{Misconf: m, Reaction: inject.ReactionGood}
	stamp := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

	base := t.TempDir()
	dirA := filepath.Join(base, "shard-a")
	dirB := filepath.Join(base, "shard-b")
	saveSnapshot(t, dirA, set, opts, map[string]inject.Outcome{key: a}, stamp)
	saveSnapshot(t, dirB, set, opts, map[string]inject.Outcome{key: b}, stamp)

	for _, order := range [][]string{{dirA, dirB}, {dirB, dirA}} {
		mergedDir := t.TempDir()
		stats, err := mergeInto(t, mergedDir, order)
		if err != nil {
			t.Fatal(err)
		}
		if stats[0].Duplicates != 1 {
			t.Errorf("order %v: Duplicates = %d, want 1", order, stats[0].Duplicates)
		}
		store, err := campaignstore.Open(mergedDir)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := store.Load("synth")
		if err != nil {
			t.Fatal(err)
		}
		// shard-b > shard-a lexicographically, so b must win either way.
		if got := snap.Outcomes[key].Reaction; got != inject.ReactionGood {
			t.Errorf("order %v: merged reaction = %v, want the lexicographically greatest dir's %v",
				order, got, inject.ReactionGood)
		}
	}
}

// TestMergeRejectsMisfiledSnapshot: a snapshot saved under a file name
// that does not match its system (a hand-copied file) must fail the
// merge with a clear error, not panic or silently double-count.
func TestMergeRejectsMisfiledSnapshot(t *testing.T) {
	set := synthSet("p")
	dir := t.TempDir()
	saveSnapshot(t, dir, set, inject.DefaultOptions(), map[string]inject.Outcome{}, time.Now().UTC())
	store, err := campaignstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(store.Path("synth"), store.Path("renamed")); err != nil {
		t.Fatal(err)
	}
	_, err = mergeInto(t, t.TempDir(), []string{dir})
	if err == nil || !strings.Contains(err.Error(), "belongs in") {
		t.Errorf("Merge with a misfiled snapshot = %v, want a belongs-in error", err)
	}
}

// TestMergeSkipsShardsWithoutTheSystem: a shard that saw none of a
// system's work (every misconfiguration hashed elsewhere) simply does
// not contribute to that system's merge.
func TestMergeSkipsShardsWithoutTheSystem(t *testing.T) {
	set := synthSet("p")
	opts := inject.DefaultOptions()
	c := set.Constraints[0]
	m := synthMisconf("m0", c)
	d1, d2 := t.TempDir(), t.TempDir()
	saveSnapshot(t, d1, set, opts,
		map[string]inject.Outcome{inject.CacheKey(m): {Misconf: m}}, time.Now().UTC())
	// d2 holds a snapshot for a different system only.
	store2, err := campaignstore.Open(d2)
	if err != nil {
		t.Fatal(err)
	}
	other := campaignstore.New("othersys", constraint.NewSet("othersys"), opts, map[string]inject.Outcome{})
	if err := saveLocked(t, store2, other); err != nil {
		t.Fatal(err)
	}
	stats, err := mergeInto(t, t.TempDir(), []string{d1, d2})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("merged %d systems, want 2 (synth + othersys)", len(stats))
	}
	for _, st := range stats {
		if st.System == "synth" && st.Shards != 1 {
			t.Errorf("synth merged from %d shards, want 1", st.Shards)
		}
	}
}
