package shard

import (
	"context"
	"testing"

	"spex/internal/campaignstore"
)

// lockedCampaign runs CampaignAll under the store's writer lock — the
// lock-handle-per-run shape every production driver uses.
func lockedCampaign(t testing.TB, ctx context.Context, store *campaignstore.Store, ws []Workload, opts Options) ([]SystemRun, error) {
	t.Helper()
	lk, err := store.Lock()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if uerr := lk.Unlock(); uerr != nil {
			t.Error(uerr)
		}
	}()
	return CampaignAll(ctx, lk.Set(), ws, opts)
}

// saveLocked saves one snapshot under the store's writer lock.
func saveLocked(t testing.TB, store *campaignstore.Store, snap *campaignstore.Snapshot) error {
	t.Helper()
	lk, err := store.Lock()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if uerr := lk.Unlock(); uerr != nil {
			t.Error(uerr)
		}
	}()
	return lk.Save(snap)
}

// mergeInto opens and locks the destination directory, then folds the
// shard directories into it.
func mergeInto(t testing.TB, dstDir string, srcs []string) ([]MergeStat, error) {
	t.Helper()
	dst, err := campaignstore.Open(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	lk, err := dst.Lock()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if uerr := lk.Unlock(); uerr != nil {
			t.Error(uerr)
		}
	}()
	return Merge(lk.Set(), srcs)
}
