package shard

import "sync"

// Hub fans one campaign's Progress stream out to any number of
// subscribers — the shared progress pipeline behind every consumer:
// the CLI status line and TTY bar renderer (internal/progressui), the
// daemon's Server-Sent-Events stream (internal/server), and the
// coordinator's heartbeats all read the same events a single
// Options.OnProgress callback would see. Plug Emit into
// Options.OnProgress (or chain it from an existing callback) and
// attach consumers with Subscribe.
//
// Delivery is best-effort by design: progress is advisory display
// state, and a stalled subscriber must never be able to stall the
// campaign. Each subscriber has a bounded buffer; when it is full the
// OLDEST buffered event is dropped to make room, so a lagging consumer
// always converges on the freshest counts (progress is monotonic per
// system — the latest event supersedes everything before it).
type Hub struct {
	mu     sync.Mutex
	subs   map[int]chan Progress
	nextID int
	closed bool
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{subs: make(map[int]chan Progress)}
}

// Emit broadcasts one event to every subscriber. It never blocks: a
// subscriber whose buffer is full loses its oldest buffered event.
// Emit after Close is a no-op. The signature matches
// Options.OnProgress, so `gopts.OnProgress = hub.Emit` is the whole
// wiring.
func (h *Hub) Emit(p Progress) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	mHubEvents.Inc()
	for _, ch := range h.subs {
		select {
		case ch <- p:
		default:
			// Full: drop the oldest event, then retry once. The retry
			// can still fail if the subscriber drained the channel in
			// between — then the channel has room next Emit anyway.
			select {
			case <-ch:
				mHubDropped.Inc()
			default:
			}
			select {
			case ch <- p:
			default:
				mHubDropped.Inc()
			}
		}
	}
}

// Subscribe attaches a consumer with the given buffer size (minimum 1)
// and returns its event channel plus a cancel function. The channel is
// closed by cancel or by Close, whichever comes first; events buffered
// at Close time are still delivered before the close.
func (h *Hub) Subscribe(buf int) (<-chan Progress, func()) {
	if buf < 1 {
		buf = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	ch := make(chan Progress, buf)
	if h.closed {
		close(ch)
		return ch, func() {}
	}
	id := h.nextID
	h.nextID++
	h.subs[id] = ch
	mHubSubscribers.Add(1)
	return ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[id]; ok {
			delete(h.subs, id)
			close(ch)
			mHubSubscribers.Add(-1)
		}
	}
}

// Close ends the stream: every subscriber's channel is closed (after
// its buffered events drain) and future Emit and Subscribe calls are
// no-ops. Call it once the campaign has returned so range-loop
// consumers terminate.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for id, ch := range h.subs {
		delete(h.subs, id)
		close(ch)
		mHubSubscribers.Add(-1)
	}
}
