package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"spex/internal/campaignstore"
	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/constraint"
	"spex/internal/engine"
	"spex/internal/inject"
	"spex/internal/sim"
	"spex/internal/spex"
)

// Workload is one target system's share of a global campaign.
type Workload struct {
	// Sys is the target.
	Sys sim.System
	// Set is the inferred constraint set the misconfigurations were
	// generated from — the identity a persisted snapshot diffs against.
	Set *constraint.Set
	// Ms are the misconfigurations to test (already shard-filtered when
	// running under a Plan). The per-system report covers exactly these.
	Ms []confgen.Misconf
	// Cache, if set, replays recorded outcomes and records fresh ones —
	// per system, keyed by inject.CacheKey (no cross-system prefix; the
	// scheduler namespaces internally).
	Cache *inject.ResultCache
	// Keep lists cache keys outside Ms that a store-backed run
	// (CampaignAll) must carry through its snapshot save instead of
	// pruning as stale. A shard process sets it to the full campaign's
	// keys, so refreshing one shard against a merged (or full) store
	// never discards the other shards' outcomes.
	Keep map[string]bool
}

// BuildWorkloads turns inference results (index-aligned with systems)
// into the global scheduler's input: for each system it parses the
// template configuration, generates the misconfigurations violating
// every inferred constraint, and shard-filters them under plan (a zero
// plan keeps everything). Under an enabled plan each workload also
// vouches for the full campaign's keys (Keep), so a shard run against
// a store holding its peers' outcomes preserves them. The second
// return value is each system's pre-filter campaign size. Shared by
// cmd/spexinj and report's -global path so the two drivers cannot
// drift.
func BuildWorkloads(systems []sim.System, results []*spex.Result, plan Plan) ([]Workload, []int, error) {
	ws := make([]Workload, len(systems))
	totals := make([]int, len(systems))
	for i, sys := range systems {
		tmpl, err := conffile.Parse(sys.DefaultConfig(), sys.Syntax())
		if err != nil {
			return nil, nil, fmt.Errorf("shard: %s: %w", sys.Name(), err)
		}
		ms := confgen.NewRegistry().Generate(results[i].Set, tmpl)
		totals[i] = len(ms)
		ws[i] = Workload{Sys: sys, Set: results[i].Set, Ms: plan.Filter(sys.Name(), ms)}
		if plan.Enabled() {
			keep := make(map[string]bool, len(ms))
			for _, m := range ms {
				keep[inject.CacheKey(m)] = true
			}
			ws[i].Keep = keep
		}
	}
	return ws, totals, nil
}

// Task addresses one misconfiguration in a global workload.
type Task struct {
	// Target indexes the workload slice.
	Target int
	// Index indexes that workload's Ms.
	Index int
}

// Interleave flattens per-target workload sizes into the global
// dispatch order: round-robin across targets, the scheduler's fairness
// rule. The engine dispatches indices in order, so with round-robin the
// in-flight set spans as many targets as the pool is wide — no target's
// serialized boot phase (the per-target boot mutex) can back up every
// worker at once, and a small target draining early leaves the rest of
// the rotation, not an idle pool.
func Interleave(sizes []int) []Task {
	total := 0
	for _, n := range sizes {
		total += n
	}
	tasks := make([]Task, 0, total)
	for round := 0; len(tasks) < total; round++ {
		for t, n := range sizes {
			if round < n {
				tasks = append(tasks, Task{Target: t, Index: round})
			}
		}
	}
	return tasks
}

// Progress is one global-campaign progress event, emitted per completed
// outcome: the aggregate position plus the owning system's position —
// exactly what a single streaming status line needs — plus the
// outcome's identity, which the coordinator's worker heartbeats
// (internal/coord) key on.
// The JSON tags are the event's wire form on the daemon's SSE stream
// (internal/server), snake_case like the rest of the public API.
type Progress struct {
	// System is the completed outcome's target.
	System string `json:"system"`
	// Key is the completed outcome's replay identity (inject.CacheKey).
	Key string `json:"key,omitempty"`
	// Failed reports that the task errored (harness failure, gate
	// rejection, or cancellation mid-run): its outcome will not be
	// cached or persisted, so a heartbeat must not count it as done.
	Failed bool `json:"failed,omitempty"`
	// Yielded narrows Failed: the task was abandoned because its key was
	// reassigned to another worker by a work-stealing rebalance
	// (inject.ErrYielded). Progress consumers can render yields
	// distinctly — they are rebalance traffic, not errors.
	Yielded bool `json:"yielded,omitempty"`
	// SystemDone/SystemTotal count within the system.
	SystemDone  int `json:"system_done"`
	SystemTotal int `json:"system_total"`
	// Done/Total count across the whole global queue.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Elapsed is the task's wall-clock execution time (zero when the
	// outcome was replayed from the cache). Trace recorders use it to
	// reconstruct per-misconf spans from the event stream.
	Elapsed time.Duration `json:"elapsed_ns,omitempty"`
}

// Options tune one global run.
type Options struct {
	// Workers bounds the single global pool (0 = one per CPU).
	Workers int
	// Inject holds the campaign options shared by every workload. The
	// scheduling fields (Workers, Progress, Cache) are ignored — the
	// global pool replaces them.
	Inject inject.Options
	// OnProgress, if set, streams every completed outcome. Calls are
	// serialized by the scheduler.
	OnProgress func(Progress)
	// Gate, if set, is consulted immediately before a misconfiguration
	// executes (cache replays bypass it — a replay costs nothing and is
	// already recorded). A non-nil error abandons the task with that
	// error recorded on its outcome, exactly like a harness failure,
	// and the outcome is never cached. The coordinator's worker harness
	// (internal/coord) gates on lease ownership, which is how a
	// work-stealing rebalance stops the victim from executing keys that
	// were just reassigned.
	Gate func(system string, m confgen.Misconf) error
}

// cachePrefix namespaces one workload's keys inside the shared engine
// cache. System names never contain NUL, so prefixes cannot collide.
func cachePrefix(sys sim.System) string { return sys.Name() + "\x00" }

// RunGlobal executes every workload's misconfigurations through one
// engine worker pool in interleaved order and reassembles per-workload
// reports, index-aligned with ws. Each report is identical to what a
// standalone inject.RunContext over the same workload would produce
// (both reassemble through inject.Assemble in input order), so going
// global changes wall-clock utilization, never results. On
// cancellation every report is still returned — finished outcomes kept,
// unstarted ones marked Skipped — together with the context error.
func RunGlobal(ctx context.Context, ws []Workload, opts Options) ([]*inject.Report, error) {
	runners := make([]*inject.Runner, len(ws))
	sizes := make([]int, len(ws))
	total := 0
	for i, w := range ws {
		runners[i] = inject.NewRunner(w.Sys, opts.Inject)
		sizes[i] = len(w.Ms)
		total += sizes[i]
	}
	tasks := Interleave(sizes)

	// One shared engine cache serves every workload, keys namespaced by
	// system. Seeded from the per-workload caches up front; written back
	// per workload after the run, so each Workload.Cache ends up exactly
	// as a standalone run would leave it (replays + fresh records).
	var global *engine.Cache[inject.Outcome]
	for _, w := range ws {
		if w.Cache != nil {
			global = engine.NewCache[inject.Outcome]()
			break
		}
	}
	if global != nil {
		for i, w := range ws {
			if w.Cache == nil {
				continue
			}
			prefix := cachePrefix(ws[i].Sys)
			for key, out := range w.Cache.Snapshot() {
				global.Put(prefix+key, out)
			}
		}
	}

	eopts := engine.Options[inject.Outcome]{Workers: opts.Workers}
	if global != nil {
		eopts.Cache = global
		eopts.KeyOf = func(i int) string {
			t := tasks[i]
			if ws[t.Target].Cache == nil {
				return "" // this workload runs uncached
			}
			return cachePrefix(ws[t.Target].Sys) + inject.CacheKey(ws[t.Target].Ms[t.Index])
		}
	}
	if opts.OnProgress != nil {
		done := 0
		sysDone := make([]int, len(ws))
		eopts.OnResult = func(r engine.Result[inject.Outcome]) {
			if r.Skipped {
				// Never-started task flushed by a cancellation: not work
				// done — tallied on the per-system Report.Skipped instead.
				return
			}
			t := tasks[r.Index]
			done++
			sysDone[t.Target]++
			opts.OnProgress(Progress{
				System:      ws[t.Target].Sys.Name(),
				Key:         inject.CacheKey(ws[t.Target].Ms[t.Index]),
				Failed:      r.Err != nil,
				Yielded:     errors.Is(r.Err, inject.ErrYielded),
				SystemDone:  sysDone[t.Target],
				SystemTotal: sizes[t.Target],
				Done:        done,
				Total:       total,
				Elapsed:     r.Elapsed,
			})
		}
	}

	results, cancelErr := engine.Run(ctx, total, func(ctx context.Context, i int) (inject.Outcome, error) {
		t := tasks[i]
		if opts.Gate != nil {
			if err := opts.Gate(ws[t.Target].Sys.Name(), ws[t.Target].Ms[t.Index]); err != nil {
				return inject.Outcome{}, err
			}
		}
		return runners[t.Target].Test(ctx, ws[t.Target].Ms[t.Index])
	}, eopts)

	// Write the shared cache back into the per-workload caches: each
	// ends with exactly its own namespace's entries (seeded replays plus
	// fresh recordings), the state a standalone cached run would leave.
	if global != nil {
		entries := global.Snapshot()
		for i, w := range ws {
			if w.Cache == nil {
				continue
			}
			prefix := cachePrefix(ws[i].Sys)
			own := make(map[string]inject.Outcome)
			for key, out := range entries {
				if strings.HasPrefix(key, prefix) {
					own[key[len(prefix):]] = out
				}
			}
			w.Cache.LoadSnapshot(own)
		}
	}

	// Route the flat results back per workload, restoring each task's
	// within-workload index, and reassemble through the same code path
	// as inject.RunContext.
	perTarget := make([][]engine.Result[inject.Outcome], len(ws))
	for i := range ws {
		perTarget[i] = make([]engine.Result[inject.Outcome], sizes[i])
	}
	for i, r := range results {
		t := tasks[i]
		r.Index = t.Index
		perTarget[t.Target][t.Index] = r
	}
	reps := make([]*inject.Report, len(ws))
	for i, w := range ws {
		reps[i] = inject.Assemble(w.Sys.Name(), w.Ms, perTarget[i], w.Cache)
	}
	if cancelErr != nil {
		return reps, fmt.Errorf("shard: %w", cancelErr)
	}
	return reps, nil
}

// SystemRun is one workload's result in a store-backed global campaign.
type SystemRun struct {
	// Sys is the workload's target.
	Sys sim.System
	// Report is the campaign report (never nil, even on cancellation).
	Report *inject.Report
	// Status describes how the persistent store was used (zero when
	// CampaignAll ran without a store).
	Status campaignstore.Status
	// Err records a non-fatal per-system store failure (the campaign
	// completed but its snapshot could not be saved). Cancellation is
	// returned from CampaignAll itself, not recorded here.
	Err error
}

// CampaignAll is the store-backed global campaign: campaignstore
// .Campaign's load → diff → retest-delta → save lifecycle for every
// workload, with all workloads' execution interleaved on one pool. For
// each workload it loads the system's snapshot, Diffs the stored
// constraint set against Workload.Set, seeds the workload cache with
// the recorded outcomes, evicts the delta-selected retests, runs
// everything through RunGlobal (replays cost nothing), and saves the
// updated snapshot — even after cancellation, so the next run resumes
// with exactly the unfinished misconfigurations.
//
// The store is addressed through held per-system writer locks: the
// campaign ends in snapshot saves, and the campaignstore lock handles
// are the only capability for those, so a caller must have acquired
// each workload system's lock (or a whole-directory lock viewed
// through Lock.Set) before it can even name this function's persistent
// mode. A nil set runs the campaign unpersisted; a restricted set
// missing a workload's system fails that system's save loudly.
func CampaignAll(ctx context.Context, locks *campaignstore.LockSet, ws []Workload, opts Options) ([]SystemRun, error) {
	runs := make([]SystemRun, len(ws))
	for i := range ws {
		runs[i].Sys = ws[i].Sys
	}
	prevStamps := make([]map[string]time.Time, len(ws))
	if locks != nil {
		store := locks.Store()
		for i := range ws {
			w := &ws[i]
			cache := inject.NewResultCache()
			runs[i].Status, prevStamps[i] = store.Prepare(w.Sys.Name(), w.Set, w.Ms, opts.Inject, w.Keep, cache)
			w.Cache = cache
		}
	}

	reps, runErr := RunGlobal(ctx, ws, opts)
	for i := range ws {
		runs[i].Report = reps[i]
	}
	if locks != nil {
		for i := range ws {
			snap := campaignstore.New(ws[i].Sys.Name(), ws[i].Set, opts.Inject, ws[i].Cache.Snapshot())
			// Keys this run executed or re-validated (everything in Ms)
			// are genuinely fresh; keys merely carried through the save
			// (Workload.Keep) retain their original stamps, so a shard
			// refresh can never make a peer's outcomes look newer than
			// the peer's own retests at merge time.
			if len(ws[i].Keep) > 0 && prevStamps[i] != nil {
				own := make(map[string]bool, len(ws[i].Ms))
				for _, m := range ws[i].Ms {
					own[inject.CacheKey(m)] = true
				}
				for k := range snap.Outcomes {
					if !own[k] {
						if t, ok := prevStamps[i][k]; ok {
							snap.Stamps[k] = t
						}
					}
				}
			}
			if err := locks.Save(snap); err != nil {
				runs[i].Err = err
				continue
			}
			runs[i].Status.Saved = true
		}
	}
	return runs, runErr
}
