// Package shard turns the single-process campaign engine into a
// multi-backend system: it partitions the global injection workload
// across processes or machines and merges the shards' persisted state
// back into one canonical store (the ROADMAP's "campaign sharding
// across processes/machines" item, scaling the paper's §3.1 campaign
// beyond one host).
//
// The subsystem has two cooperating pieces:
//
//   - A global cross-target scheduler (RunGlobal, CampaignAll): instead
//     of one worker pool per system, every target's misconfigurations
//     flatten into a single task queue feeding one pool. Tasks are
//     interleaved round-robin across targets (Interleave), the
//     boot-lock fairness rule: consecutive tasks hit different targets,
//     so no single target's serialized boot phase (the per-target boot
//     mutex in internal/targets) backs up the whole pool, and small
//     targets draining early no longer idle workers.
//
//   - A shard/merge layer (Plan, Merge): Plan deterministically
//     partitions the workload by stable hash of inject.CacheKey, each
//     `spexinj -shard i/N -state dir` process executes one partition
//     and saves per-shard campaignstore snapshots, and Merge folds the
//     shard state directories into one canonical store whose replayed
//     report is identical to an unsharded run's.
//
// The lifecycle is plan → execute → merge: the plan is pure arithmetic
// (any process can compute it from the same inference, no coordinator),
// execution is embarrassingly parallel across shards, and the merge
// validates that the shards actually belong together (same schema
// fingerprint, same constraint set, same outcome-affecting options)
// before folding their outcomes, resolving duplicate keys
// freshest-wins.
package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"spex/internal/campaignstore"
	"spex/internal/confgen"
	"spex/internal/inject"
)

// Plan identifies one shard of an N-way campaign partition. The zero
// value is "unsharded" (Enabled reports false, Owns reports true for
// everything). A plan is either arithmetic (Shard/Of, the
// coordinator-free i/N hash partition) or explicit (Keys, a key-set
// plan): the coordinator's lease layer (internal/coord) compiles leases
// into key-set plans, which is how a work-stealing rebalance reassigns
// misconfigurations mid-campaign without re-hashing anything.
type Plan struct {
	// Shard is this process's 1-based shard number.
	Shard int
	// Of is the total number of shards.
	Of int
	// Keys, when non-nil, makes this an explicit key-set plan: the shard
	// owns exactly the listed system-qualified replay identities
	// (GlobalKey), and Shard/Of hashing is ignored. An empty non-nil map
	// owns nothing.
	Keys map[string]bool
}

// GlobalKey qualifies a misconfiguration's replay identity (key, an
// inject.CacheKey) with its system name — the key space explicit
// key-set plans and the coordinator's leases work in. System names
// never contain NUL, so keys cannot collide across systems.
func GlobalKey(system, key string) string {
	return system + "\x00" + key
}

// KeySetPlan builds an explicit plan owning exactly keys (GlobalKey
// strings). The map is used as-is, not copied.
func KeySetPlan(keys map[string]bool) Plan { return Plan{Keys: keys} }

// Owner returns the 0-based shard index the i/N hash partition assigns
// the misconfiguration to: a stable FNV-1a hash of the system name and
// the misconfiguration's replay identity, mod n. Every process that ran
// the same deterministic inference computes the same assignment with no
// coordination; the coordinator uses the same function for its initial
// leases, so a coordinated campaign starts from exactly the partition a
// static -shard run would use.
func Owner(system string, m confgen.Misconf, n int) int {
	h := fnv.New64a()
	h.Write([]byte(system))
	h.Write([]byte{0})
	h.Write([]byte(inject.CacheKey(m)))
	return int(h.Sum64() % uint64(n))
}

// ParsePlan parses the "i/N" notation of the -shard flag (1-based, so
// "1/2" and "2/2" together cover a two-way split).
func ParsePlan(s string) (Plan, error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return Plan{}, fmt.Errorf("shard: plan %q is not of the form i/N", s)
	}
	idx, err1 := strconv.Atoi(s[:i])
	of, err2 := strconv.Atoi(s[i+1:])
	if err1 != nil || err2 != nil {
		return Plan{}, fmt.Errorf("shard: plan %q is not of the form i/N", s)
	}
	p := Plan{Shard: idx, Of: of}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// Validate checks the plan's arithmetic: 1 <= Shard <= Of. Key-set
// plans have no arithmetic to check.
func (p Plan) Validate() error {
	if p.Keys != nil {
		return nil
	}
	if p.Of < 1 || p.Shard < 1 || p.Shard > p.Of {
		return fmt.Errorf("shard: invalid plan %d/%d (want 1 <= i <= N)", p.Shard, p.Of)
	}
	return nil
}

// Enabled reports whether the plan actually partitions (a zero or 1/1
// plan owns everything; any key-set plan partitions, even an empty one).
func (p Plan) Enabled() bool { return p.Keys != nil || p.Of > 1 }

// String renders the plan in the -shard flag's notation; key-set plans
// render their cardinality.
func (p Plan) String() string {
	if p.Keys != nil {
		return fmt.Sprintf("keyset(%d)", len(p.Keys))
	}
	return fmt.Sprintf("%d/%d", p.Shard, p.Of)
}

// Owns reports whether this shard executes the misconfiguration: for a
// key-set plan, membership in Keys; otherwise the stable i/N hash
// partition (Owner), so every process that ran the same deterministic
// inference computes the same partition with no coordination, each key
// belongs to exactly one shard, and the assignment survives re-runs (a
// shard's incremental -state re-run replays its own outcomes).
func (p Plan) Owns(system string, m confgen.Misconf) bool {
	if p.Keys != nil {
		return p.Keys[GlobalKey(system, inject.CacheKey(m))]
	}
	if p.Of <= 1 {
		return true
	}
	return Owner(system, m, p.Of) == p.Shard-1
}

// Filter returns the misconfigurations this shard owns, in input order.
func (p Plan) Filter(system string, ms []confgen.Misconf) []confgen.Misconf {
	if !p.Enabled() {
		return ms
	}
	var out []confgen.Misconf
	for _, m := range ms {
		if p.Owns(system, m) {
			out = append(out, m)
		}
	}
	return out
}

// MergeStat describes how one system's shards folded together.
type MergeStat struct {
	// System is the target system's name.
	System string
	// Shards is how many source snapshots contributed.
	Shards int
	// Outcomes is the merged snapshot's outcome count.
	Outcomes int
	// Duplicates counts outcome keys that appeared in more than one
	// shard and were resolved freshest-wins (0 in the canonical flow —
	// a plan assigns each key to exactly one shard and fresh shard
	// stores hold only their own outcomes; merging refreshed copies of
	// a merged store, where every snapshot carries every key, produces
	// them wholesale).
	Duplicates int
	// Path is the merged snapshot file.
	Path string
	// Fingerprint is the merged snapshot's replay-equivalence hash
	// (campaignstore.Snapshot.Fingerprint), folded record-by-record by
	// the streaming writer — equal to an unsharded run's store
	// fingerprint when the shards covered the same campaign.
	Fingerprint string
}

// source is one shard directory's snapshot file for a system.
type source struct{ dir, path string }

// mergeCursor is one shard file's read position in the k-way merge:
// the streaming iterator plus its current record.
type mergeCursor struct {
	dir  string
	it   *campaignstore.SnapshotIter
	key  string
	st   time.Time
	out  inject.Outcome
	done bool
}

// advance loads the cursor's next record.
func (c *mergeCursor) advance() error {
	key, st, out, err := c.it.Next()
	if errors.Is(err, io.EOF) {
		c.done = true
		return nil
	}
	if err != nil {
		return fmt.Errorf("shard: %s: %w", c.dir, err)
	}
	c.key, c.st, c.out = key, st, out
	return nil
}

// Merge folds shard state directories into one canonical store —
// addressed by its held writer lock (dst), the capability for the
// streaming snapshot writes the merge performs; callers acquire it
// with campaignstore.Store.Lock before merging, exactly like any other
// writer. For every system with a snapshot in any source directory, the
// shards' records fold into a single snapshot via a k-way streaming
// merge — every source file's records arrive in ascending key order
// (the binary container's invariant), so the merge holds one record per
// shard in memory and writes the result through the store's streaming
// writer, never materializing any shard's full outcome set. (A legacy
// v2 JSON source has no record framing and is materialized alone; memory
// is bounded by the largest single legacy file, not the shard set.)
//
// Validation is strict — all of a system's shards must carry this
// build's schema fingerprint (the iterator's header check enforces it),
// the same constraint-set fingerprint, and the same outcome-affecting
// options identity (campaignstore OptionsID); mixing an optimized shard
// with a -no-optimizations shard is an error, not a silent blend.
// Duplicate outcome keys resolve freshest-wins by each outcome's own
// stamp (Snapshot.Stamps — when it was last executed or re-validated,
// NOT when its snapshot happened to be saved, so a shard that merely
// carried a peer's outcome through its save can never shadow the peer's
// fresher retest; exactly-equal stamps tie-break to the
// lexicographically greatest source directory, so the merge result is a
// function of the shard set, not of the order the directories were
// listed in), and the merged snapshot replays exactly like an unsharded
// run's — its fingerprint, folded record-by-record during the write, is
// identical to an unsharded run's store fingerprint.
func Merge(dst *campaignstore.LockSet, srcDirs []string) ([]MergeStat, error) {
	if dst == nil {
		return nil, errors.New("shard: merge needs the destination store's writer locks")
	}
	if len(srcDirs) == 0 {
		return nil, errors.New("shard: no shard directories to merge")
	}

	bySystem := map[string][]source{}
	var systems []string
	for _, dir := range srcDirs {
		// Sources must already exist — Open would create a typo'd path
		// as an empty directory before the "no snapshots" error lands.
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("shard: %s is not a shard state directory", dir)
		}
		store, err := campaignstore.Open(dir)
		if err != nil {
			return nil, err
		}
		paths, err := store.Snapshots()
		if err != nil {
			return nil, fmt.Errorf("shard: %s: %w", dir, err)
		}
		if len(paths) == 0 {
			return nil, fmt.Errorf("shard: %s holds no campaign snapshots", dir)
		}
		for system, path := range paths {
			if len(bySystem[system]) == 0 {
				systems = append(systems, system)
			}
			bySystem[system] = append(bySystem[system], source{dir: dir, path: path})
		}
	}
	sort.Strings(systems)

	var stats []MergeStat
	for _, system := range systems {
		stat, err := mergeSystem(dst, system, bySystem[system])
		if err != nil {
			return nil, err
		}
		stats = append(stats, stat)
	}
	return stats, nil
}

// mergeSystem streams one system's shard files into the destination
// store through its held per-system writer lock.
func mergeSystem(dst *campaignstore.LockSet, system string, srcs []source) (MergeStat, error) {
	cursors := make([]*mergeCursor, 0, len(srcs))
	defer func() {
		for _, c := range cursors {
			c.it.Close()
		}
	}()
	for _, src := range srcs {
		it, err := campaignstore.OpenSnapshotIter(src.path, system)
		if err != nil {
			return MergeStat{}, fmt.Errorf("shard: %s: %w", src.dir, err)
		}
		c := &mergeCursor{dir: src.dir, it: it}
		cursors = append(cursors, c)
		if err := c.advance(); err != nil {
			return MergeStat{}, err
		}
	}
	first := cursors[0]
	for _, c := range cursors[1:] {
		if c.it.Header().Options != first.it.Header().Options {
			return MergeStat{}, fmt.Errorf(
				"shard: %s: shards disagree on campaign options (%s has %q, %s has %q) — refusing to merge",
				system, first.dir, first.it.Header().Options, c.dir, c.it.Header().Options)
		}
		if c.it.Header().SetFingerprint != first.it.Header().SetFingerprint {
			return MergeStat{}, fmt.Errorf(
				"shard: %s: shards disagree on the constraint set (%s has %s, %s has %s) — refusing to merge",
				system, first.dir, first.it.Header().SetFingerprint, c.dir, c.it.Header().SetFingerprint)
		}
	}

	w, err := dst.NewStreamWriter(&campaignstore.Snapshot{
		Schema:         campaignstore.SchemaFingerprint(),
		System:         system,
		SavedAt:        time.Now().UTC(),
		Options:        first.it.Header().Options,
		SetFingerprint: first.it.Header().SetFingerprint,
		Constraints:    first.it.Header().Constraints,
	})
	if err != nil {
		return MergeStat{}, err
	}
	outcomes, duplicates := 0, 0
	for {
		// The frontier: the smallest key any cursor is parked on.
		var min string
		live := false
		for _, c := range cursors {
			if c.done {
				continue
			}
			if !live || c.key < min {
				min, live = c.key, true
			}
		}
		if !live {
			break
		}
		// All cursors holding the frontier key compete; the freshest
		// stamp wins, equal stamps tie-break to the lexicographically
		// greatest shard directory (independent of srcDirs order).
		var win *mergeCursor
		for _, c := range cursors {
			if c.done || c.key != min {
				continue
			}
			if win == nil {
				win = c
				continue
			}
			duplicates++
			if c.st.After(win.st) || (c.st.Equal(win.st) && c.dir > win.dir) {
				win = c
			}
		}
		if err := w.Add(min, win.st, win.out); err != nil {
			w.Abort()
			return MergeStat{}, err
		}
		outcomes++
		for _, c := range cursors {
			if !c.done && c.key == min {
				if err := c.advance(); err != nil {
					w.Abort()
					return MergeStat{}, err
				}
			}
		}
	}
	fp, err := w.Close()
	if err != nil {
		return MergeStat{}, err
	}
	return MergeStat{
		System:      system,
		Shards:      len(cursors),
		Outcomes:    outcomes,
		Duplicates:  duplicates,
		Path:        dst.Store().Path(system),
		Fingerprint: fp,
	}, nil
}
