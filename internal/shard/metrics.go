// Fan-out metrics: the Hub's drop-oldest load shedding becomes
// observable — every emitted event, every drop forced by a slow
// subscriber, and the live subscriber count feed the obs registry.
package shard

import "spex/internal/obs"

const (
	metricHubEvents      = "spex_hub_events_total"
	metricHubDropped     = "spex_hub_dropped_events_total"
	metricHubSubscribers = "spex_hub_subscribers"
)

var (
	mHubEvents      = obs.Default().Counter(metricHubEvents, "progress events emitted through Hub fan-out")
	mHubDropped     = obs.Default().Counter(metricHubDropped, "buffered events dropped because a subscriber lagged (drop-oldest policy)")
	mHubSubscribers = obs.Default().Gauge(metricHubSubscribers, "live Hub subscribers")
)
