// Constraints walks the paper's Figure 3: one inferred constraint of each
// kind, each from the target system that exhibits the original pattern,
// followed by the Figure 5 injection that violates it and the observed
// reaction.
package main

import (
	"context"
	"fmt"
	"log"

	"spex/internal/report"
)

func main() {
	results, err := report.AnalyzeAllContext(context.Background(), report.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Figure3(results))

	fig5, err := report.Figure5()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig5)
}
