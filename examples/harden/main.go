// Harden walks the paper's Figure 2 end to end: the OpenLDAP-like server
// crashes with "segmentation fault" when listener-threads exceeds a
// hard-coded maximum of 16 that no code validates and no manual documents.
// The example shows (1) the user's experience, (2) what SPEX-INJ reports to
// the developer, and (3) the reaction after the recommended fix — an
// explicit check with a pinpointing message.
package main

import (
	"fmt"
	"log"
	"time"

	"spex/internal/conffile"
	"spex/internal/sim"
	"spex/internal/simlog"
	"spex/internal/targets/ldapd"
)

func main() {
	sys := ldapd.New()

	fmt.Println("== 1. the user sets listener-threads = 32 ==")
	env := sim.NewEnv()
	sys.SetupEnv(env)
	cfg, err := conffile.Parse(sys.DefaultConfig(), sys.Syntax())
	if err != nil {
		log.Fatal(err)
	}
	cfg.Set("listener-threads", "32")
	out := sim.MonitorStart(sys, env, cfg, 250*time.Millisecond)
	fmt.Printf("reaction: %s\n", out.Kind)
	if out.Kind == sim.StartCrash {
		fmt.Printf("console : Segmentation fault (core dumped)\n")
		fmt.Println("-> the user has no idea the root cause is a configuration value;")
		fmt.Println("   the paper reports two users filed this as a software bug.")
	}

	fmt.Println("\n== 2. what a hardened server should do ==")
	fmt.Println("add a check before spawning listeners:")
	fmt.Print(`    if c.listenerThreads > 16 {
        log.Errorf("listener-threads N exceeds the supported maximum 16")
        exit(1)
    }
`)

	fmt.Println("\n== 3. the hardened reaction ==")
	env2 := sim.NewEnv()
	sys.SetupEnv(env2)
	out2 := startHardened(env2, 32)
	fmt.Printf("reaction: %s\n", out2)
	fmt.Printf("console :\n%s", indent(env2.Log))
	fmt.Println("-> the user fixes the value without calling support.")
}

// startHardened simulates the patched startup path.
func startHardened(env *sim.Env, listenerThreads int64) string {
	if listenerThreads < 1 || listenerThreads > 16 {
		env.Log.Errorf("listener-threads %d is out of the supported range [1, 16]", listenerThreads)
		return "clean exit with a pinpointing message (good reaction)"
	}
	return "started"
}

func indent(l *simlog.Log) string {
	out := ""
	for _, e := range l.Entries() {
		out += "  " + e.String() + "\n"
	}
	return out
}
