// Designaudit reproduces the paper's Squid interaction (§5.1): audit the
// proxy's configuration design, show the silent-overruling and unsafe-API
// findings Squid's developers fixed after the authors reported them, and
// demonstrate the before/after behaviour for a user who writes
// "query_icmp yes".
package main

import (
	"fmt"
	"log"

	"spex/internal/conffile"
	"spex/internal/designcheck"
	"spex/internal/sim"
	"spex/internal/spex"
	"spex/internal/targets/proxyd"
)

func main() {
	sys := proxyd.New()
	res, err := spex.InferSystem(sys)
	if err != nil {
		log.Fatal(err)
	}
	audit := designcheck.Run(res)

	fmt.Println("== design audit:", sys.Name(), "==")
	fmt.Printf("silent overruling : %d parameters\n", audit.SilentOverruling)
	fmt.Printf("unsafe transforms : %d parameters\n", audit.UnsafeTransform)
	fmt.Printf("case sensitivity  : %d sensitive / %d insensitive values\n",
		audit.CaseSensitive, audit.CaseInsensitive)
	fmt.Println("\nfirst findings:")
	shown := 0
	for _, f := range audit.Findings {
		if f.Kind != designcheck.FindingSilentOverruling && f.Kind != designcheck.FindingUnsafeAPI {
			continue
		}
		fmt.Printf("  [%s] %s\n", f.Kind, f.Message)
		shown++
		if shown == 6 {
			break
		}
	}

	fmt.Println("\n== the user experience behind finding (c) of Figure 6 ==")
	env := sim.NewEnv()
	sys.SetupEnv(env)
	cfg, err := conffile.Parse(sys.DefaultConfig(), sys.Syntax())
	if err != nil {
		log.Fatal(err)
	}
	cfg.Set("query_icmp", "yes") // the user means "on"
	inst, err := sys.Start(env, cfg)
	if err != nil {
		log.Fatalf("unexpected: %v", err)
	}
	defer inst.Stop()
	eff, _ := inst.Effective("query_icmp")
	fmt.Printf("user wrote     : query_icmp yes\n")
	fmt.Printf("server is using: query_icmp %s   <- silently treated as off\n", eff)
	fmt.Println("\nthe fix Squid adopted: accept on/yes/enable and off/no/disable,")
	fmt.Println("and reject anything else with an explicit parse error — improving")
	fmt.Println("more than 150 parameters through the shared parsing library.")
}
