// Quickstart: infer configuration constraints for one system, generate
// misconfigurations that violate them, run the injection campaign, and
// print the exposed vulnerabilities — the full SPEX + SPEX-INJ pipeline in
// one file.
package main

import (
	"fmt"
	"log"

	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/inject"
	"spex/internal/spex"
	"spex/internal/targets/mydb"
)

func main() {
	sys := mydb.New()

	// 1. SPEX: infer constraints from the target's source corpus,
	//    starting from the annotated option tables.
	res, err := spex.InferSystem(sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inferred %d constraints for %d parameters (%d lines of annotation)\n",
		res.Set.Len(), res.Params, res.LoA)
	for _, c := range res.Set.ByParam("ft_max_word_len") {
		fmt.Printf("  e.g. [%s] %s\n", c.Kind, c)
	}

	// 2. SPEX-INJ: generate misconfigurations violating each constraint.
	tmpl, err := conffile.Parse(sys.DefaultConfig(), sys.Syntax())
	if err != nil {
		log.Fatal(err)
	}
	ms := confgen.NewRegistry().Generate(res.Set, tmpl)
	fmt.Printf("\ngenerated %d misconfigurations\n", len(ms))

	// 3. Inject, boot, test, classify.
	rep, err := inject.Run(sys, ms, inject.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign finished: %d vulnerabilities at %d code locations\n\n",
		len(rep.Vulnerabilities()), rep.UniqueLocations())
	for r, n := range rep.CountByReaction() {
		fmt.Printf("  %-20s %d\n", r, n)
	}

	// 4. One developer-facing error report.
	if v := rep.Vulnerabilities(); len(v) > 0 {
		fmt.Println()
		fmt.Println(inject.ErrorReport(v[0]))
	}
}
