module spex

go 1.21
