module spex

go 1.22
