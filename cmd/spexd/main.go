// Command spexd is the campaign service daemon: a resident, multi-
// tenant process that owns a root campaign state directory, hosts any
// number of namespaces under it, runs misconfiguration-injection
// campaigns on demand, and serves results and live progress over a
// JSON HTTP API (internal/server). Where spexinj and spexeval are
// one-shot CLI invocations against a -state dir, spexd holds each
// namespace's whole-directory writer lock for its whole lifetime and
// schedules jobs under per-system write locks — the service form of
// the same engine, store, scheduler, and coordinator stack.
//
// Jobs over disjoint system sets run concurrently (up to -max-jobs per
// namespace); jobs sharing a system serialize on that system's lock.
// A job may declare dependencies (needs: [jobID...]) to form a DAG,
// or stages: ["infer", "inject", "eval"] to pipeline per system. Jobs
// are journaled durably under <ns>/jobs/ (a restarted daemon lists
// finished jobs and re-queues jobs that never started), and stream
// progress over Server-Sent Events through the same progress pipeline
// (shard.Hub) the CLI -progress renderers consume. Reads — outcome
// listings and the paper's evaluation tables — are served read-only
// from the store's atomic snapshots and work even while a job is
// writing; table text is byte-identical to a
// `spexeval -state <dir> -table N` run over the same store.
//
// # Quickstart (see also examples/quickstart/README.md)
//
//	spexd -state /var/lib/spex -addr 127.0.0.1:8476 &
//
//	# submit a campaign over every target, 4 workers wide
//	curl -s -X POST localhost:8476/v1/jobs \
//	     -d '{"all": true, "workers": 4}'
//	# => {"id": "job-000001", "state": "queued", ...}
//
//	# watch live progress (SSE: per-system done/total, steals, yields)
//	curl -N localhost:8476/v1/jobs/job-000001/events
//
//	# or watch the whole daemon: the embedded dashboard at
//	# http://localhost:8476/ui/, the daemon-wide event bus
//	# (curl -N localhost:8476/v1/events — every namespace's lifecycle,
//	# scheduler, and progress events), or a remote terminal attach
//	# (spexwatch -addr localhost:8476)
//
//	# poll status; then fetch results
//	curl -s localhost:8476/v1/jobs/job-000001
//	curl -s localhost:8476/v1/systems/proxyd/outcomes
//	curl -s 'localhost:8476/v1/tables/5?format=text'   # == spexeval -table 5
//	curl -s -X DELETE localhost:8476/v1/jobs/job-000002   # cancel
//
// A job body may also name specific targets and engage the embedded
// work-stealing coordinator (internal/coord):
//
//	curl -s -X POST localhost:8476/v1/jobs \
//	     -d '{"systems": ["proxyd", "mydb"], "coordinate": 2}'
//
// # Namespaces and the job DAG
//
// Every /v1 route addresses the default namespace — the root state
// directory, so a single-tenant daemon keeps the URLs above. The same
// routes exist under /v1/ns/{ns}/ for named tenants, each a full state
// directory at <state>/<ns>/ created on first job submission:
//
//	# tenant "alpha" gets its own store, journal, queue, and quotas
//	curl -s -X POST localhost:8476/v1/ns/alpha/jobs \
//	     -d '{"systems": ["proxyd"], "workers": 4}'
//	curl -s 'localhost:8476/v1/ns/alpha/tables/5?format=text'
//	curl -s localhost:8476/v1/ns            # list namespaces
//
// Jobs in one namespace schedule as a DAG: needs waits for other jobs,
// stages pipelines infer → inject → eval per system (a fast system
// evaluates while a slow one still injects; every transition is a
// "stage" SSE event):
//
//	curl -s -X POST localhost:8476/v1/jobs \
//	     -d '{"systems": ["mydb"], "needs": ["job-000001"]}'
//	curl -s -X POST localhost:8476/v1/jobs \
//	     -d '{"all": true, "stages": ["infer", "inject", "eval"]}'
//
// Coordinate-job workers run in-process by default; -spawn replaces
// them with external worker processes from a command template (the
// same {lease}/{state}/{worker} placeholders as `spexinj -spawn`, so
// an SSH preset fans workers out across machines sharing the state
// directory). External workers report through heartbeat files only:
// with -spawn, a coordinate job's SSE stream carries the coordinator
// lifecycle events (spawn/steal/retry/merge) but not per-outcome
// "progress" events — those need the in-process default.
//
// SIGINT/SIGTERM shut the daemon down gracefully: running campaigns
// drain through the engine's cancellation path (finished outcomes are
// already persisted — the stores resume where they stopped), queued
// jobs are journaled cancelled, and every namespace's writer lock is
// released.
//
// Usage:
//
//	spexd -state /var/lib/spex
//	spexd -state /var/lib/spex -addr 127.0.0.1:8476 -workers 8
//	spexd -state /var/lib/spex -spawn "ssh w{worker}.cluster spexinj -lease {lease} -state {state} -all"
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"spex/internal/obs"
	"spex/internal/server"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		state      = flag.String("state", "", "campaign state directory the daemon takes ownership of (required)")
		addr       = flag.String("addr", "127.0.0.1:8476", "HTTP listen address")
		workers    = flag.Int("workers", 0, "default campaign pool width for jobs that don't set one (0 = one per CPU)")
		spawn      = flag.String("spawn", "", "coordinate jobs: worker command template with {lease}/{state}/{worker} placeholders (default: in-process workers)")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		pprof      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (operator profiling surface)")
		maxJobs    = flag.Int("max-jobs", 0, "max concurrently running jobs per namespace (0 = 4)")
		maxQueue   = flag.Int("max-queued", 0, "max queued jobs per namespace before submits answer 503 (0 = 256)")
		metricsOut = flag.String("metrics-out", "", "on graceful shutdown, dump the process metrics registry as JSON to this file (server, engine, store, and dashboard bus series)")
	)
	flag.Parse()
	defer func() {
		if *metricsOut == "" {
			return
		}
		if err := obs.Default().WriteJSONFile(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "spexd: metrics-out: %v\n", err)
		}
	}()
	if *state == "" {
		fmt.Fprintln(os.Stderr, "spexd: -state is required (the daemon owns a campaign state directory)")
		return 2
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "spexd: bad -log-level %q (want debug, info, warn, or error)\n", *logLevel)
		return 2
	}

	cfg := server.Config{
		StateDir:          *state,
		Workers:           *workers,
		Logger:            slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})),
		Pprof:             *pprof,
		MaxConcurrentJobs: *maxJobs,
		MaxQueuedJobs:     *maxQueue,
	}
	if *spawn != "" {
		cfg.SpawnArgv = strings.Fields(*spawn)
	}
	s, err := server.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spexd: %v\n", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "spexd: serving %s on http://%s\n", *state, *addr)
	if err := s.ListenAndServe(ctx, *addr); err != nil {
		fmt.Fprintf(os.Stderr, "spexd: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "spexd: drained; state lock released")
	return 0
}
