// Command spexeval regenerates the paper's evaluation: every table
// (1-12) and figure (1-7) of §4, measured against the seven simulated
// targets and printed next to the paper's published numbers.
//
// The seven per-system pipelines (inference, campaign, audit) fan out on
// the engine worker pool; pass -workers 1 to force the sequential order,
// or -global to interleave all seven campaigns on one cross-target pool
// (internal/shard) so small targets draining early do not idle workers.
// The rendered tables are identical in every mode. With -state <dir> the
// campaign phase is incremental across runs: each system's outcomes are
// persisted as a snapshot (internal/campaignstore) and replayed on the
// next run, re-executing only what the constraint delta selects.
//
// Usage:
//
//	spexeval               # everything
//	spexeval -table 5      # one table
//	spexeval -figure 7     # one figure
//	spexeval -workers 8 -progress
//	spexeval -global -workers 8     # one cross-target campaign pool
//	spexeval -state /var/lib/spex   # persistent incremental campaigns
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"spex/internal/report"
)

func main() {
	var (
		tableN   = flag.Int("table", 0, "render only this table (1-12)")
		figureN  = flag.Int("figure", 0, "render only this figure (1-7)")
		workers  = flag.Int("workers", 0, "parallel per-system pipelines (0 = one per CPU)")
		campaign = flag.Int("campaign-workers", 0, "parallel misconfigurations within each campaign (0 or 1 = sequential; systems already fan out)")
		progress = flag.Bool("progress", false, "stream per-system analysis progress to stderr")
		state    = flag.String("state", "", "state directory for persistent incremental campaigns (snapshots replay across runs)")
		global   = flag.Bool("global", false, "interleave all campaigns on one cross-target worker pool (tables are identical; -campaign-workers is ignored)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := report.AnalyzeOptions{Workers: *workers, CampaignWorkers: *campaign, StateDir: *state, Global: *global}
	if *progress {
		opts.OnProgress = func(p report.Progress) {
			fmt.Fprintf(os.Stderr, "spexeval: %s %s (%d/%d)\n", p.System, p.Stage, p.Done, p.Total)
		}
	}
	results, err := report.AnalyzeAllContext(ctx, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spexeval: %v\n", err)
		os.Exit(1)
	}
	for _, r := range results {
		if r.StateErr != nil {
			fmt.Fprintf(os.Stderr, "spexeval: warning: %s: snapshot not saved: %v\n", r.Sys.Name(), r.StateErr)
		}
	}

	fail := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "spexeval: %v\n", err)
			os.Exit(1)
		}
	}
	tables := map[int]func() string{
		1:  func() string { return report.Table1(results) },
		2:  report.Table2,
		3:  func() string { return report.Table3(results) },
		4:  func() string { return report.Table4(results) },
		5:  func() string { return report.Table5(results) },
		6:  func() string { return report.Table6(results) },
		7:  func() string { return report.Table7(results) },
		8:  func() string { return report.Table8(results) },
		9:  func() string { return report.Tables9and10(results) },
		10: func() string { return report.Tables9and10(results) },
		11: func() string { return report.Table11(results) },
		12: func() string { return report.Table12(results) },
	}
	figures := map[int]func() (string, error){
		1: report.Figure1,
		2: report.Figure2,
		3: func() (string, error) { return report.Figure3(results), nil },
		4: func() (string, error) { return report.Figure4(), nil },
		5: report.Figure5,
		6: func() (string, error) { return report.Figure6(results), nil },
		7: report.Figure7,
	}

	switch {
	case *tableN != 0:
		f, ok := tables[*tableN]
		if !ok {
			fail(fmt.Errorf("no table %d", *tableN))
		}
		fmt.Println(f())
	case *figureN != 0:
		f, ok := figures[*figureN]
		if !ok {
			fail(fmt.Errorf("no figure %d", *figureN))
		}
		s, err := f()
		fail(err)
		fmt.Println(s)
	default:
		for i := 1; i <= 12; i++ {
			if i == 10 {
				continue // rendered together with table 9
			}
			fmt.Println(tables[i]())
		}
		for i := 1; i <= 7; i++ {
			s, err := figures[i]()
			fail(err)
			fmt.Println(s)
		}
	}
}
