// Command spexeval regenerates the paper's evaluation: every table
// (1-12) and figure (1-7) of §4, measured against the seven simulated
// targets and printed next to the paper's published numbers.
//
// The seven per-system pipelines (inference, campaign, audit) fan out on
// the engine worker pool; pass -workers 1 to force the sequential order,
// or -global to interleave all seven campaigns on one cross-target pool
// (internal/shard) so small targets draining early do not idle workers.
// Under -global (or -shard), -progress renders the campaign itself
// through the shared progress pipeline (shard.Hub → internal/progressui,
// the same renderer as spexinj): per-system bars on a terminal, the
// throttled one-line aggregate otherwise. Without -global it streams
// the original per-system analysis stage lines.
// The rendered tables are identical in every mode. With -state <dir> the
// campaign phase is incremental across runs: each system's outcomes are
// persisted as a snapshot (internal/campaignstore) and replayed on the
// next run, re-executing only what the constraint delta selects. The
// state directory is guarded by an exclusive writer lock — a concurrent
// run fails fast instead of silently racing snapshot saves.
//
// # Distributed table pipeline
//
// With -shard i/N (requires -state) the campaign phase covers only this
// process's deterministic partition of every system's
// misconfigurations — the same FNV-1a partition spexinj -shard uses —
// and persists per-shard snapshots instead of rendering tables (a
// partial campaign would render misleading counts). Run one shard per
// process or machine, fold the shard directories with spexmerge, and
// render from the merged store:
//
//	spexeval -shard 1/2 -state /tmp/s1   # machine 1
//	spexeval -shard 2/2 -state /tmp/s2   # machine 2
//	spexmerge -out /var/lib/spex /tmp/s1 /tmp/s2
//	spexeval -state /var/lib/spex        # replays 100%; tables byte-identical
//
// The final render replays every outcome from the merged store at zero
// fresh simulated cost and produces tables byte-identical to an
// unsharded run's.
//
// Usage:
//
//	spexeval               # everything
//	spexeval -table 5      # one table
//	spexeval -figure 7     # one figure
//	spexeval -workers 8 -progress
//	spexeval -global -workers 8     # one cross-target campaign pool
//	spexeval -state /var/lib/spex   # persistent incremental campaigns
//	spexeval -shard 1/2 -state /tmp/s1   # one shard of the campaign phase
//	spexeval -index -state /var/lib/spex # render from the outcome indexes,
//	                                     # read-only (no writer lock taken)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"spex/internal/campaignstore"
	"spex/internal/obs"
	"spex/internal/progressui"
	"spex/internal/report"
	"spex/internal/shard"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		tableN     = flag.Int("table", 0, "render only this table (1-12)")
		figureN    = flag.Int("figure", 0, "render only this figure (1-7)")
		workers    = flag.Int("workers", 0, "parallel per-system pipelines (0 = one per CPU)")
		campaign   = flag.Int("campaign-workers", 0, "parallel misconfigurations within each campaign (0 or 1 = sequential; systems already fan out)")
		progress   = flag.Bool("progress", false, "stream per-system analysis progress to stderr")
		state      = flag.String("state", "", "state directory for persistent incremental campaigns (snapshots replay across runs)")
		global     = flag.Bool("global", false, "interleave all campaigns on one cross-target worker pool (tables are identical; -campaign-workers is ignored)")
		shardFlag  = flag.String("shard", "", "campaign only one shard i/N of every system's workload and persist per-shard snapshots instead of rendering tables (requires -state; merge with spexmerge, then render with -state alone)")
		index      = flag.Bool("index", false, "render tables and figures from the store's outcome indexes without replaying snapshots — read-only: takes no writer lock, runs no campaign (requires -state)")
		metricsOut = flag.String("metrics-out", "", "on exit, dump the process metrics registry as JSON to this file (engine, store, and scheduler series)")
	)
	flag.Parse()
	defer func() {
		if *metricsOut == "" {
			return
		}
		if err := obs.Default().WriteJSONFile(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "spexeval: metrics-out: %v\n", err)
		}
	}()

	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "spexeval: %v\n", err)
		return 1
	}

	var plan shard.Plan
	if *shardFlag != "" {
		var err error
		plan, err = shard.ParsePlan(*shardFlag)
		if err != nil {
			return fail(err)
		}
		if *state == "" {
			fmt.Fprintln(os.Stderr, "spexeval: -shard requires -state (the shard's outcomes are its snapshot directory)")
			return 2
		}
		if *index {
			fmt.Fprintln(os.Stderr, "spexeval: -index is read-only and cannot run a -shard campaign")
			return 2
		}
	}
	if *index && *state == "" {
		fmt.Fprintln(os.Stderr, "spexeval: -index requires -state (the indexes live beside the snapshots)")
		return 2
	}

	var locks *campaignstore.LockSet
	if *state != "" && !*index {
		store, err := campaignstore.Open(*state)
		if err != nil {
			return fail(err)
		}
		// One writer per state directory, same contract as spexinj. The
		// handle is passed down as the analysis's snapshot-write
		// capability.
		lock, err := store.Lock()
		if err != nil {
			return fail(err)
		}
		defer func() {
			if uerr := lock.Unlock(); uerr != nil {
				fmt.Fprintf(os.Stderr, "spexeval: %v\n", uerr)
			}
		}()
		locks = lock.Set()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var results []*report.SystemResult
	if *index {
		// Index render: inference recomputes (deterministic, cheap), the
		// campaign side comes from the outcome indexes — no snapshot
		// record is parsed, nothing is written, no lock is needed. The
		// rendered tables are byte-identical to a -state replay.
		store, err := campaignstore.Open(*state)
		if err != nil {
			return fail(err)
		}
		results, err = report.ReplayFromIndex(ctx, store)
		if err != nil {
			return fail(err)
		}
	} else {
		opts := report.AnalyzeOptions{Workers: *workers, CampaignWorkers: *campaign, State: locks, Global: *global, Shard: plan}
		var finishProgress func()
		if *progress {
			if *global || plan.Enabled() {
				// Campaigns run on the global scheduler: render them through
				// the shared progress pipeline, spexinj-parity bars included.
				opts.OnCampaignProgress, finishProgress = progressui.Attach(os.Stderr, "spexeval")
			} else {
				opts.OnProgress = func(p report.Progress) {
					fmt.Fprintf(os.Stderr, "spexeval: %s %s (%d/%d)\n", p.System, p.Stage, p.Done, p.Total)
				}
			}
		}
		var err error
		results, err = report.AnalyzeAllContext(ctx, opts)
		if finishProgress != nil {
			finishProgress()
		}
		if err != nil {
			return fail(err)
		}
		saveFailed := false
		for _, r := range results {
			if r.StateErr != nil {
				saveFailed = true
				fmt.Fprintf(os.Stderr, "spexeval: warning: %s: snapshot not saved: %v\n", r.Sys.Name(), r.StateErr)
			}
		}
		if saveFailed && plan.Enabled() {
			// A shard run's snapshots ARE its output: exiting 0 here would
			// let a pipeline merge a store silently missing this partition.
			fmt.Fprintln(os.Stderr, "spexeval: sharded analysis failed to persist its partition")
			return 1
		}
	}

	if plan.Enabled() {
		// A shard's campaign is partial by construction: rendering
		// Table 3/5 from it would print misleading counts. Summarize
		// what was persisted and point at the merge step instead.
		fmt.Printf("=== sharded analysis %s: campaign partition persisted to %s ===\n", plan, *state)
		for _, r := range results {
			rep := r.Campaign
			fmt.Printf("  %-10s %d misconfigurations campaigned (replayed %d, executed %d)\n",
				r.Sys.Name(), len(rep.Outcomes), rep.Replayed, rep.Finished()-rep.Replayed)
		}
		fmt.Printf("merge the shard directories with spexmerge, then render tables with: spexeval -state <merged>\n")
		return 0
	}

	figures := map[int]func() (string, error){
		1: report.Figure1,
		2: report.Figure2,
		3: func() (string, error) { return report.Figure3(results), nil },
		4: func() (string, error) { return report.Figure4(), nil },
		5: report.Figure5,
		6: func() (string, error) { return report.Figure6(results), nil },
		7: report.Figure7,
	}

	switch {
	case *tableN != 0:
		// One rendering path with the daemon's /v1/tables text endpoint
		// (report.RenderTableText), held byte-identical by golden tests.
		text, err := report.RenderTableText(*tableN, results)
		if err != nil {
			return fail(err)
		}
		fmt.Println(text)
	case *figureN != 0:
		f, ok := figures[*figureN]
		if !ok {
			return fail(fmt.Errorf("no figure %d", *figureN))
		}
		s, err := f()
		if err != nil {
			return fail(err)
		}
		fmt.Println(s)
	default:
		for i := 1; i <= report.MaxTable; i++ {
			if i == 10 {
				continue // rendered together with table 9
			}
			text, err := report.RenderTableText(i, results)
			if err != nil {
				return fail(err)
			}
			fmt.Println(text)
		}
		for i := 1; i <= 7; i++ {
			s, err := figures[i]()
			if err != nil {
				return fail(err)
			}
			fmt.Println(s)
		}
	}
	return 0
}
