// Command spex infers configuration constraints for a simulated target
// system and prints them (paper §2).
//
// Usage:
//
//	spex -system mydb [-kind range] [-param ft_min_word_len] [-v]
//	spex -all -stats    # infer all seven targets in parallel
//	spex -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"spex/internal/constraint"
	"spex/internal/spex"
	"spex/internal/targets"
)

func main() {
	var (
		system  = flag.String("system", "", "target system to analyze (see -list)")
		all     = flag.Bool("all", false, "analyze every target (inference fans out on the engine pool)")
		list    = flag.Bool("list", false, "list available target systems")
		kind    = flag.String("kind", "", "only show one constraint kind: basic, semantic, range, dep, rel")
		param   = flag.String("param", "", "only show constraints for this parameter")
		stats   = flag.Bool("stats", false, "print per-kind counts and accuracy only")
		workers = flag.Int("workers", 0, "parallel per-system inferences with -all (0 = one per CPU)")
	)
	flag.Parse()

	if *list {
		for _, s := range targets.All() {
			fmt.Printf("%-10s %s\n", s.Name(), s.Description())
		}
		return
	}
	if *all {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		systems := targets.All()
		results, err := spex.InferAll(ctx, systems, *workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spex: %v\n", err)
			os.Exit(1)
		}
		for i, res := range results {
			fmt.Printf("%-10s %4d constraints  %6d LoC  %3d params  %2d LoA  (%s mapping)\n",
				systems[i].Name(), res.Set.Len(), res.LoC, res.Params, res.LoA, res.Convention)
		}
		return
	}
	sys := targets.ByName(*system)
	if sys == nil {
		fmt.Fprintf(os.Stderr, "spex: unknown system %q (try -list)\n", *system)
		os.Exit(2)
	}
	res, err := spex.InferSystem(sys)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spex: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("system      : %s (%s)\n", sys.Name(), sys.Description())
	fmt.Printf("corpus      : %d LoC, %d parameters, %d lines of annotation (%s mapping)\n",
		res.LoC, res.Params, res.LoA, res.Convention)
	fmt.Printf("constraints : %d\n\n", res.Set.Len())

	if *stats {
		counts := res.Set.CountByKind()
		acc := spex.Score(res.Set, sys.GroundTruth())
		for _, k := range []constraint.Kind{
			constraint.KindBasicType, constraint.KindSemanticType,
			constraint.KindRange, constraint.KindControlDep, constraint.KindValueRel,
		} {
			a := acc[k]
			if a.Total == 0 {
				fmt.Printf("%-20s %4d  accuracy N/A\n", k, counts[k])
				continue
			}
			fmt.Printf("%-20s %4d  accuracy %.1f%% (%d/%d)\n", k, counts[k], 100*a.Ratio(), a.Correct, a.Total)
		}
		return
	}

	var filter constraint.Kind = -1
	switch *kind {
	case "basic":
		filter = constraint.KindBasicType
	case "semantic":
		filter = constraint.KindSemanticType
	case "range":
		filter = constraint.KindRange
	case "dep":
		filter = constraint.KindControlDep
	case "rel":
		filter = constraint.KindValueRel
	case "":
	default:
		fmt.Fprintf(os.Stderr, "spex: unknown -kind %q\n", *kind)
		os.Exit(2)
	}
	for _, c := range res.Set.Constraints {
		if filter >= 0 && c.Kind != filter {
			continue
		}
		if *param != "" && c.Param != *param {
			continue
		}
		doc := ""
		if !c.Documented && (c.Kind == constraint.KindRange ||
			c.Kind == constraint.KindControlDep || c.Kind == constraint.KindValueRel) {
			doc = "  [UNDOCUMENTED]"
		}
		fmt.Printf("[%-18s] %s%s\n", c.Kind, c, doc)
	}
	if len(res.Unsafe) > 0 {
		fmt.Printf("\nunsafe transformation APIs:\n")
		for _, u := range res.Unsafe {
			fmt.Printf("  %s parsed via %s\n", u.Param, u.API)
		}
	}
}
