// Command spexmerge folds per-shard campaign state directories into one
// canonical store — the merge step of a distributed injection campaign
// (internal/shard, paper §3.1 scaled across processes/machines).
//
// Each `spexinj -shard i/N -state <dir>` process saves its partition's
// outcomes as campaignstore snapshots under its own directory; spexmerge
// unions them per system into a single snapshot that replays exactly
// like an unsharded run's. The merge is validating, not trusting: every
// shard of a system must carry this build's schema fingerprint, the
// same inferred constraint set, and the same outcome-affecting campaign
// options (an optimized shard never silently blends with a
// -no-optimizations one). Duplicate outcome keys — overlapping ad-hoc
// shards, or a shard re-run — resolve freshest-wins by snapshot save
// time.
//
// Usage:
//
//	spexmerge -out /var/lib/spex /tmp/shard1 /tmp/shard2 [...]
//	spexinj -all -state /var/lib/spex     # replays the merged campaign
package main

import (
	"flag"
	"fmt"
	"os"

	"spex/internal/shard"
)

func main() {
	out := flag.String("out", "", "destination state directory for the merged store (required)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "spexmerge: -out is required")
		os.Exit(2)
	}
	dirs := flag.Args()
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "spexmerge: no shard directories given")
		os.Exit(2)
	}

	stats, err := shard.Merge(*out, dirs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spexmerge: %v\n", err)
		os.Exit(1)
	}
	for _, st := range stats {
		fmt.Printf("%-10s %d outcomes from %d shard(s)", st.System, st.Outcomes, st.Shards)
		if st.Duplicates > 0 {
			fmt.Printf(", %d duplicate keys resolved freshest-wins", st.Duplicates)
		}
		fmt.Printf(" -> %s\n", st.Path)
		fmt.Printf("%-10s store fingerprint %s\n", "", st.Fingerprint)
	}
}
