// Command spexmerge folds per-shard campaign state directories into one
// canonical store — the merge step of a distributed injection campaign
// (internal/shard, paper §3.1 scaled across processes/machines).
//
// Each `spexinj -shard i/N -state <dir>` (or `spexeval -shard i/N`)
// process saves its partition's outcomes as campaignstore snapshots
// under its own directory; spexmerge unions them per system into a
// single snapshot that replays exactly like an unsharded run's. The
// merge is validating, not trusting: every shard of a system must carry
// this build's schema fingerprint, the same inferred constraint set,
// and the same outcome-affecting campaign options (an optimized shard
// never silently blends with a -no-optimizations one). Duplicate
// outcome keys — overlapping ad-hoc shards, a shard re-run, or a
// work-stealing race — resolve freshest-wins by each outcome's own
// stamp (when it was last executed, not when its snapshot was saved);
// exactly-equal stamps tie-break to the lexicographically greatest
// shard directory, so the result never depends on argument order.
//
// A coordinated run (`spexinj -coordinate N -state <dir>`) performs
// this merge itself when its workers drain; spexmerge remains the
// manual step for ad-hoc static shards.
//
// Usage:
//
//	spexmerge -out /var/lib/spex /tmp/shard1 /tmp/shard2 [...]
//	spexinj -all -state /var/lib/spex     # replays the merged campaign
//	spexeval -state /var/lib/spex         # renders tables from the merge
package main

import (
	"flag"
	"fmt"
	"os"

	"spex/internal/campaignstore"
	"spex/internal/obs"
	"spex/internal/shard"
)

func main() { os.Exit(run()) }

func run() int {
	out := flag.String("out", "", "destination state directory for the merged store (required)")
	metricsOut := flag.String("metrics-out", "", "on exit, dump the process metrics registry as JSON to this file (store and merge series)")
	flag.Parse()
	defer func() {
		if *metricsOut == "" {
			return
		}
		if err := obs.Default().WriteJSONFile(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "spexmerge: metrics-out: %v\n", err)
		}
	}()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "spexmerge: -out is required")
		return 2
	}
	dirs := flag.Args()
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "spexmerge: no shard directories given")
		return 2
	}

	// The destination is a writable state directory like any other:
	// merging into a store a live campaign is saving to would silently
	// race the snapshot renames, so take the same writer lock spexinj
	// and spexeval hold.
	dst, err := campaignstore.Open(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spexmerge: %v\n", err)
		return 1
	}
	lock, err := dst.Lock()
	if err != nil {
		fmt.Fprintf(os.Stderr, "spexmerge: %v\n", err)
		return 1
	}
	defer func() {
		if uerr := lock.Unlock(); uerr != nil {
			fmt.Fprintf(os.Stderr, "spexmerge: %v\n", uerr)
		}
	}()

	stats, err := shard.Merge(lock.Set(), dirs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spexmerge: %v\n", err)
		return 1
	}
	for _, st := range stats {
		fmt.Printf("%-10s %d outcomes from %d shard(s)", st.System, st.Outcomes, st.Shards)
		if st.Duplicates > 0 {
			fmt.Printf(", %d duplicate keys resolved freshest-wins", st.Duplicates)
		}
		fmt.Printf(" -> %s\n", st.Path)
		fmt.Printf("%-10s store fingerprint %s\n", "", st.Fingerprint)
	}
	return 0
}
