// Command spexwatch attaches a terminal to a remote spexd daemon's
// live event streams: the same per-system progress display the CLI
// drivers render locally (internal/progressui), fed from the daemon's
// Server-Sent Events instead of an in-process hub. No state directory,
// no lock — just an HTTP client on the observability surface.
//
//	spexwatch -addr localhost:8476                 # every namespace (GET /v1/events)
//	spexwatch -addr localhost:8476 -ns alpha       # one namespace's stream
//	spexwatch -addr localhost:8476 -job job-000001 # one job (GET /v1/jobs/{id}/events)
//	spexwatch -addr localhost:8476 -ns alpha -job job-000001 -once
//
// A dropped connection reconnects with exponential backoff, resuming
// from the last SSE event id (Last-Event-ID) so the daemon replays only
// what was missed — per-job streams replay from the job's backlog, the
// daemon-wide stream from the bus's ring. -once disables reconnection:
// the command exits when the stream ends, which for a job stream is the
// job's terminal state (watching an already-finished job prints its
// final state and exits immediately).
//
// Exit status: 0 when the watched job finished done (or the stream was
// ended deliberately), 1 when it failed or was cancelled, 2 on usage
// errors.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spex/internal/progressui"
	"spex/internal/shard"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr = flag.String("addr", "", "spexd address (host:port, required)")
		ns   = flag.String("ns", "", "namespace to watch (default: every namespace)")
		job  = flag.String("job", "", "job ID to watch (default: the whole daemon-wide stream)")
		once = flag.Bool("once", false, "do not reconnect: exit when the stream ends")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "spexwatch: -addr is required (a spexd host:port)")
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts := options{
		addr:       *addr,
		namespace:  *ns,
		jobID:      *job,
		once:       *once,
		tty:        progressui.IsTerminal(os.Stdout),
		backoffMin: 500 * time.Millisecond,
		backoffMax: 5 * time.Second,
	}
	return watch(ctx, opts, os.Stdout, os.Stderr)
}

// options carries the resolved invocation; tests drive watch directly.
type options struct {
	addr                   string // host:port or full http:// base
	namespace              string // "" = every namespace
	jobID                  string // "" = the daemon-wide bus stream
	once                   bool
	tty                    bool
	backoffMin, backoffMax time.Duration
}

// streamURL builds the SSE endpoint the options address.
func (o options) streamURL() string {
	base := o.addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/") + "/v1"
	if o.namespace != "" && o.namespace != "default" {
		base += "/ns/" + o.namespace
	}
	if o.jobID != "" {
		return base + "/jobs/" + o.jobID + "/events"
	}
	return base + "/events"
}

// wireEvent is the decoded data: payload of one SSE frame — a superset
// of both stream shapes: a job stream's server.Event (kind "state",
// per-job event_id) and the daemon-wide bus's dash.Event (kind "job",
// bus seq, namespace). Unknown fields are ignored, so the watcher
// tolerates additive schema growth (the bus stamps Event.V for
// incompatible changes).
type wireEvent struct {
	ID        uint64 `json:"event_id"` // job stream frames
	Seq       uint64 `json:"seq"`      // bus frames
	Namespace string `json:"namespace"`
	Kind      string `json:"kind"`
	Job       string `json:"job"`
	State     string `json:"state"`
	Error     string `json:"error"`

	Progress *shard.Progress `json:"progress"`
}

// terminalState reports a finished job.
func terminalState(s string) bool {
	return s == "done" || s == "failed" || s == "cancelled"
}

// watcher folds SSE frames into the shared progress renderer.
type watcher struct {
	opts     options
	renderer *progressui.Renderer
	errw     io.Writer
	// lastID is the id: of the last dispatched frame, sent back as
	// Last-Event-ID on reconnect so the daemon replays only the gap.
	lastID string
	// finalState is set when the watched job reaches a terminal state
	// (job mode only) — the signal to stop reconnecting.
	finalState string
	sawEvent   bool
}

// watch runs the attach-stream-reconnect loop until the context ends,
// the watched job finishes, or (-once) the stream ends.
func watch(ctx context.Context, opts options, out, errw io.Writer) int {
	w := &watcher{
		opts:     opts,
		renderer: progressui.New(out, opts.tty, "spexwatch"),
		errw:     errw,
	}
	url := opts.streamURL()
	backoff := opts.backoffMin
	for {
		err := w.stream(ctx, url)
		if w.finalState != "" || ctx.Err() != nil || opts.once {
			break
		}
		if err == nil {
			// The daemon ended the stream without a terminal state (e.g.
			// shutdown): treat like a drop and retry until the context ends.
			err = errors.New("stream ended")
		}
		fmt.Fprintf(errw, "spexwatch: %v; reconnecting in %s\n", err, backoff)
		if !sleepCtx(ctx, backoff) {
			break
		}
		backoff *= 2
		if backoff > opts.backoffMax {
			backoff = opts.backoffMax
		}
	}
	w.renderer.Finish()
	switch {
	case w.finalState == "done":
		fmt.Fprintf(errw, "spexwatch: job %s done\n", opts.jobID)
		return 0
	case w.finalState != "":
		fmt.Fprintf(errw, "spexwatch: job %s %s\n", opts.jobID, w.finalState)
		return 1
	}
	return 0
}

// sleepCtx waits d or until ctx ends; it reports whether the full wait
// elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// stream attaches once and consumes frames until the connection ends.
// A nil return means the server closed the stream (for a job stream,
// normally its terminal state).
func (w *watcher) stream(ctx context.Context, url string) error {
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	if w.lastID != "" {
		req.Header.Set("Last-Event-ID", w.lastID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}

	// SSE framing: accumulate id:/event:/data: lines, dispatch on the
	// blank line; comment lines (keepalives, truncation notices) are
	// skipped.
	var id, data string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data != "" {
				w.dispatch(id, data)
			}
			id, data = "", ""
		case strings.HasPrefix(line, ":"):
			// comment frame
		case strings.HasPrefix(line, "id:"):
			id = strings.TrimSpace(strings.TrimPrefix(line, "id:"))
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}

// dispatch folds one frame into the display.
func (w *watcher) dispatch(id, data string) {
	if id != "" {
		w.lastID = id
	}
	var e wireEvent
	if err := json.Unmarshal([]byte(data), &e); err != nil {
		return
	}
	w.sawEvent = true
	switch e.Kind {
	case "progress":
		if e.Progress == nil {
			return
		}
		p := *e.Progress
		if w.opts.jobID == "" {
			// Daemon-wide stream: one bar per (namespace, job, system),
			// since many jobs' systems interleave on one display.
			ns := e.Namespace
			if ns == "" {
				ns = "default"
			}
			p.System = ns + "/" + e.Job + "/" + p.System
		}
		w.renderer.Handle(p)
	case "state", "job":
		// "state" on a job stream, "job" on the daemon-wide bus.
		label := e.Job
		if w.opts.jobID == "" && e.Namespace != "" {
			label = e.Namespace + "/" + e.Job
		}
		fmt.Fprintf(w.errw, "spexwatch: %s %s%s\n", label, e.State, errSuffix(e.Error))
		if w.opts.jobID != "" && e.Job == w.opts.jobID && terminalState(e.State) {
			w.finalState = e.State
		}
	}
}

func errSuffix(msg string) string {
	if msg == "" {
		return ""
	}
	return " (" + msg + ")"
}
