package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeJobStream is an SSE endpoint that drops the first connection
// mid-stream and requires the second to resume with Last-Event-ID.
type fakeJobStream struct {
	mu       sync.Mutex
	conns    int
	resumeID string // Last-Event-ID seen on the second connection
}

func (f *fakeJobStream) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.conns++
	conn := f.conns
	if conn == 2 {
		f.resumeID = r.Header.Get("Last-Event-ID")
	}
	f.mu.Unlock()
	w.Header().Set("Content-Type", "text/event-stream")
	w.WriteHeader(http.StatusOK)
	fl := w.(http.Flusher)
	emit := func(id int, kind, data string) {
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, kind, data)
		fl.Flush()
	}
	if conn == 1 {
		emit(1, "state", `{"event_id":1,"kind":"state","job":"job-000001","state":"running"}`)
		emit(2, "progress", `{"event_id":2,"kind":"progress","job":"job-000001","progress":{"system":"proxyd","system_done":3,"system_total":10,"done":3,"total":10}}`)
		// Drop the connection mid-job: no terminal state was sent.
		return
	}
	// The resumed connection carries the rest of the job.
	emit(3, "progress", `{"event_id":3,"kind":"progress","job":"job-000001","progress":{"system":"proxyd","system_done":10,"system_total":10,"done":10,"total":10}}`)
	emit(4, "state", `{"event_id":4,"kind":"state","job":"job-000001","state":"done"}`)
}

func TestWatchResumesAfterDrop(t *testing.T) {
	f := &fakeJobStream{}
	ts := httptest.NewServer(f)
	defer ts.Close()

	var out, errw strings.Builder
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	code := watch(ctx, options{
		addr:       ts.URL,
		jobID:      "job-000001",
		backoffMin: 10 * time.Millisecond,
		backoffMax: 50 * time.Millisecond,
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("watch exited %d\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
	}
	f.mu.Lock()
	conns, resumeID := f.conns, f.resumeID
	f.mu.Unlock()
	if conns != 2 {
		t.Fatalf("watcher made %d connections, want 2 (drop + resume)", conns)
	}
	if resumeID != "2" {
		t.Errorf("resume sent Last-Event-ID %q, want \"2\" (the last dispatched frame)", resumeID)
	}
	if !strings.Contains(out.String(), "spexwatch: 10/10") {
		t.Errorf("final progress line missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "proxyd") {
		t.Errorf("per-system count missing:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "job job-000001 done") {
		t.Errorf("terminal state line missing:\n%s", errw.String())
	}
}

func TestWatchOnceExitsWhenStreamEnds(t *testing.T) {
	// One connection that ends without a terminal state: -once must
	// exit instead of reconnecting.
	var conns atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "id: 1\nevent: progress\ndata: {\"kind\":\"progress\",\"job\":\"job-000001\",\"progress\":{\"system\":\"mydb\",\"system_done\":1,\"system_total\":4,\"done\":1,\"total\":4}}\n\n")
	}))
	defer ts.Close()

	var out, errw strings.Builder
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	code := watch(ctx, options{
		addr:       ts.URL,
		jobID:      "job-000001",
		once:       true,
		backoffMin: 10 * time.Millisecond,
		backoffMax: 50 * time.Millisecond,
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("watch -once exited %d", code)
	}
	if n := conns.Load(); n != 1 {
		t.Fatalf("watch -once made %d connections, want 1", n)
	}
	if !strings.Contains(out.String(), "spexwatch: 1/4 (mydb 1/4)") {
		t.Errorf("progress line missing:\n%s", out.String())
	}
}

func TestWatchFailedJobExitsNonzero(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "id: 1\nevent: state\ndata: {\"kind\":\"state\",\"job\":\"job-000001\",\"state\":\"failed\",\"error\":\"boom\"}\n\n")
	}))
	defer ts.Close()

	var out, errw strings.Builder
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	code := watch(ctx, options{addr: ts.URL, jobID: "job-000001"}, &out, &errw)
	if code != 1 {
		t.Fatalf("watch on a failed job exited %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "boom") {
		t.Errorf("failure message missing:\n%s", errw.String())
	}
}

func TestStreamURL(t *testing.T) {
	cases := []struct {
		opts options
		want string
	}{
		{options{addr: "localhost:8476"}, "http://localhost:8476/v1/events"},
		{options{addr: "localhost:8476", namespace: "alpha"}, "http://localhost:8476/v1/ns/alpha/events"},
		{options{addr: "localhost:8476", namespace: "default"}, "http://localhost:8476/v1/events"},
		{options{addr: "http://h:1/", jobID: "job-000007"}, "http://h:1/v1/jobs/job-000007/events"},
		{options{addr: "h:1", namespace: "alpha", jobID: "job-000007"}, "http://h:1/v1/ns/alpha/jobs/job-000007/events"},
	}
	for _, c := range cases {
		if got := c.opts.streamURL(); got != c.want {
			t.Errorf("streamURL(%+v) = %q, want %q", c.opts, got, c.want)
		}
	}
}
