// Command spexcheck audits a target's configuration design for error-prone
// patterns (paper §3.2): case-sensitivity and unit inconsistencies, silent
// overruling, unsafe parsing APIs, and undocumented constraints.
//
// Usage:
//
//	spexcheck -system proxyd
//	spexcheck -all
package main

import (
	"flag"
	"fmt"
	"os"

	"spex/internal/designcheck"
	"spex/internal/sim"
	"spex/internal/spex"
	"spex/internal/targets"
)

func main() {
	var (
		system = flag.String("system", "", "target system (see spex -list)")
		all    = flag.Bool("all", false, "audit every target")
	)
	flag.Parse()

	var systems []sim.System
	if *all {
		systems = targets.All()
	} else if sys := targets.ByName(*system); sys != nil {
		systems = []sim.System{sys}
	} else {
		fmt.Fprintf(os.Stderr, "spexcheck: unknown system %q\n", *system)
		os.Exit(2)
	}

	for _, sys := range systems {
		res, err := spex.InferSystem(sys)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spexcheck: %v\n", err)
			os.Exit(1)
		}
		a := designcheck.Run(res)
		fmt.Printf("=== design audit: %s ===\n", sys.Name())
		fmt.Printf("case sensitivity : %d sensitive, %d insensitive\n", a.CaseSensitive, a.CaseInsensitive)
		fmt.Printf("size units       : %v\n", a.SizeUnits)
		fmt.Printf("time units       : %v\n", a.TimeUnits)
		fmt.Printf("silent overruling: %d parameters\n", a.SilentOverruling)
		fmt.Printf("unsafe transform : %d parameters\n", a.UnsafeTransform)
		fmt.Printf("undocumented     : %d ranges, %d dependencies, %d relationships\n",
			a.UndocRange, a.UndocDep, a.UndocRel)
		if len(a.Findings) > 0 {
			fmt.Println("findings:")
			for _, f := range a.Findings {
				fmt.Printf("  [%s] %s\n", f.Kind, f.Message)
			}
		}
		fmt.Println()
	}
}
