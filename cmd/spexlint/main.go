// Spexlint is the repo's custom static-analysis suite: five analyzers
// that enforce the cross-cutting invariants of the campaign pipeline —
// the campaignstore writer-lock ownership model, context threading,
// fingerprint determinism, the non-blocking progress fan-out, and the
// obs metric-registration discipline.
// See internal/analysis for the checked-invariant catalogue.
//
// Two ways to run it:
//
//	spexlint ./...                              # standalone, tests included
//	go vet -vettool=$(which spexlint) ./...     # as a vet tool, cached by the build system
//
// Findings exit 2; a //spexlint:ignore <analyzer> <reason> directive
// on or above the flagged line waives one finding with an audit trail.
package main

import (
	"os"

	"spex/internal/analysis"
	"spex/internal/analysis/ctxflow"
	"spex/internal/analysis/fingerprintpurity"
	"spex/internal/analysis/hubsend"
	"spex/internal/analysis/lockcontract"
	"spex/internal/analysis/obsmetric"
)

// suite is the full analyzer set; the repo-wide cleanliness test runs
// the same list the binary does.
func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lockcontract.Analyzer,
		ctxflow.Analyzer,
		fingerprintpurity.Analyzer,
		hubsend.Analyzer,
		obsmetric.Analyzer,
	}
}

func main() {
	os.Exit(analysis.Main(suite(), os.Args[1:]))
}
