package main

import (
	"os"
	"path/filepath"
	"testing"

	"spex/internal/analysis"
)

// TestRepoIsClean runs the full spexlint suite over every package in
// the module, tests included, and fails on any finding. This is the
// meta-test behind the CI gate: the tree must hold its own invariants,
// with every deliberate waiver carried by an auditable
// //spexlint:ignore directive.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	units, err := analysis.Load(root, true, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	for _, u := range units {
		for _, e := range u.TypeErrors {
			t.Errorf("%s: type error: %v", u.PkgPath, e)
		}
		diags, err := analysis.RunAnalyzers(u.Fset, u.Files, u.Types, u.Info, suite())
		if err != nil {
			t.Fatalf("%s: %v", u.PkgPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
