// Command spexinj runs the misconfiguration-injection campaign against a
// simulated target system (paper §3.1): it generates errors violating every
// inferred constraint, boots the target per misconfiguration, runs the
// target's own test suite, classifies reactions, and prints error reports
// for the exposed vulnerabilities.
//
// Usage:
//
//	spexinj -system proxyd [-reports] [-max 5]
//	spexinj -all
package main

import (
	"flag"
	"fmt"
	"os"

	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/inject"
	"spex/internal/sim"
	"spex/internal/spex"
	"spex/internal/targets"
)

func main() {
	var (
		system  = flag.String("system", "", "target system (see spex -list)")
		all     = flag.Bool("all", false, "run the campaign on every target")
		reports = flag.Bool("reports", false, "print full error reports for vulnerabilities")
		max     = flag.Int("max", 10, "maximum error reports to print")
		noOpt   = flag.Bool("no-optimizations", false, "disable shortest-test-first and stop-on-first-failure")
	)
	flag.Parse()

	var systems []sim.System
	if *all {
		systems = targets.All()
	} else if sys := targets.ByName(*system); sys != nil {
		systems = []sim.System{sys}
	} else {
		fmt.Fprintf(os.Stderr, "spexinj: unknown system %q\n", *system)
		os.Exit(2)
	}

	opts := inject.DefaultOptions()
	if *noOpt {
		opts.StopOnFirstFailure = false
		opts.SortTests = false
	}

	for _, sys := range systems {
		res, err := spex.InferSystem(sys)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spexinj: %v\n", err)
			os.Exit(1)
		}
		tmpl, err := conffile.Parse(sys.DefaultConfig(), sys.Syntax())
		if err != nil {
			fmt.Fprintf(os.Stderr, "spexinj: %v\n", err)
			os.Exit(1)
		}
		ms := confgen.NewRegistry().Generate(res.Set, tmpl)
		rep, err := inject.Run(sys, ms, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spexinj: %v\n", err)
			os.Exit(1)
		}
		counts := rep.CountByReaction()
		fmt.Printf("=== %s: %d misconfigurations injected ===\n", sys.Name(), len(ms))
		order := []inject.Reaction{
			inject.ReactionCrash, inject.ReactionEarlyTerm, inject.ReactionFuncFailure,
			inject.ReactionSilentViolation, inject.ReactionSilentIgnorance,
			inject.ReactionGood, inject.ReactionTolerated,
		}
		for _, r := range order {
			marker := " "
			if r.Vulnerability() {
				marker = "!"
			}
			fmt.Printf("  %s %-20s %d\n", marker, r.String(), counts[r])
		}
		fmt.Printf("  vulnerabilities: %d at %d unique code locations; simulated cost %d units\n\n",
			len(rep.Vulnerabilities()), rep.UniqueLocations(), rep.TotalSimCost)

		if *reports {
			printed := 0
			for _, o := range rep.Vulnerabilities() {
				if printed >= *max {
					fmt.Printf("  ... (%d more vulnerabilities; raise -max)\n", len(rep.Vulnerabilities())-printed)
					break
				}
				fmt.Println(inject.ErrorReport(o))
				printed++
			}
		}
	}
}
