// Command spexinj runs the misconfiguration-injection campaign against a
// simulated target system (paper §3.1): it generates errors violating every
// inferred constraint, boots the target per misconfiguration, runs the
// target's own test suite, classifies reactions, and prints error reports
// for the exposed vulnerabilities.
//
// Campaigns run on the engine worker pool: misconfigurations of one system
// execute -workers wide, and with -all the seven targets fan out as well.
// Ctrl-C cancels the campaign; outcomes already measured are reported and
// misconfigurations never started are counted as skipped (they do not
// inflate the progress stream).
//
// # Persistent incremental campaigns
//
// With -state <dir> the campaign is incremental across process runs,
// making the paper's "the campaign is a one-time cost" claim hold end to
// end. Each run loads the system's snapshot from the state directory,
// Diffs the freshly inferred constraint set against the snapshot's
// stored set, re-executes only the delta-selected misconfigurations
// (replaying everything else at zero simulated cost), and atomically
// saves the updated snapshot. A snapshot is a versioned JSON document
// (internal/campaignstore); missing, corrupt, or schema-stale snapshots
// never replay — the run falls back to a full campaign and rebuilds the
// snapshot. A cancelled run saves its finished outcomes, so the next run
// resumes with exactly the unfinished misconfigurations.
//
// Usage:
//
//	spexinj -system proxyd [-reports] [-max 5] [-workers 8]
//	spexinj -system proxyd -state /var/lib/spex   # incremental across runs
//	spexinj -all
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"spex/internal/campaignstore"
	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/engine"
	"spex/internal/inject"
	"spex/internal/sim"
	"spex/internal/spex"
	"spex/internal/targets"
)

func main() {
	var (
		system   = flag.String("system", "", "target system (see spex -list)")
		all      = flag.Bool("all", false, "run the campaign on every target")
		reports  = flag.Bool("reports", false, "print full error reports for vulnerabilities")
		max      = flag.Int("max", 10, "maximum error reports to print")
		noOpt    = flag.Bool("no-optimizations", false, "disable shortest-test-first and stop-on-first-failure")
		workers  = flag.Int("workers", 0, "parallelism: campaigns with -all, misconfigurations for a single system (0 = one per CPU)")
		progress = flag.Bool("progress", false, "stream campaign progress to stderr")
		state    = flag.String("state", "", "state directory for persistent incremental campaigns: replay saved outcomes, retest only the constraint delta, save the updated snapshot")
	)
	flag.Parse()

	var systems []sim.System
	if *all {
		systems = targets.All()
	} else if sys := targets.ByName(*system); sys != nil {
		systems = []sim.System{sys}
	} else {
		fmt.Fprintf(os.Stderr, "spexinj: unknown system %q\n", *system)
		os.Exit(2)
	}

	opts := inject.DefaultOptions()
	if *noOpt {
		opts.StopOnFirstFailure = false
		opts.SortTests = false
	}
	// One budget, spent where it helps: with -all the systems fan out
	// and each campaign stays sequential; for a single system the
	// campaign itself runs -workers wide (0 = hardware-sized, resolved
	// by the engine).
	fanout := 1
	if len(systems) > 1 {
		fanout = *workers
		opts.Workers = 1
	} else {
		opts.Workers = *workers
	}

	var store *campaignstore.Store
	if *state != "" {
		var err error
		store, err = campaignstore.Open(*state)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spexinj: %v\n", err)
			os.Exit(1)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	type campaign struct {
		sys sim.System
		ms  []confgen.Misconf
		rep *inject.Report
		st  campaignstore.Status
	}
	results, cancelErr := engine.Run(ctx, len(systems), func(ctx context.Context, i int) (campaign, error) {
		sys := systems[i]
		res, err := spex.InferSystem(sys)
		if err != nil {
			return campaign{}, err
		}
		tmpl, err := conffile.Parse(sys.DefaultConfig(), sys.Syntax())
		if err != nil {
			return campaign{}, err
		}
		ms := confgen.NewRegistry().Generate(res.Set, tmpl)
		sysOpts := opts
		if *progress {
			sysOpts.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "spexinj: %s %d/%d\r", sys.Name(), done, total)
			}
		}
		// On cancellation keep the partial report: outcomes already
		// measured are reported (unstarted rows are counted as skipped
		// and excluded from the tallies). With -state the partial
		// snapshot is saved too, so the next run resumes the campaign.
		var rep *inject.Report
		var st campaignstore.Status
		if store != nil {
			rep, st, err = campaignstore.Campaign(ctx, store, sys, res.Set, ms, sysOpts)
		} else {
			rep, err = inject.RunContext(ctx, sys, ms, sysOpts)
		}
		if err != nil {
			if rep == nil {
				return campaign{}, err
			}
			if !errors.Is(err, context.Canceled) {
				// Partial result with a non-cancellation error (e.g. the
				// snapshot could not be saved): report it, keep the data.
				fmt.Fprintf(os.Stderr, "spexinj: %s: %v\n", sys.Name(), err)
			}
		}
		return campaign{sys: sys, ms: ms, rep: rep, st: st}, nil
	}, engine.Options[campaign]{Workers: fanout})
	if cancelErr != nil {
		fmt.Fprintf(os.Stderr, "spexinj: cancelled: %v\n", cancelErr)
	}
	if err := engine.FirstError(results); err != nil && cancelErr == nil {
		fmt.Fprintf(os.Stderr, "spexinj: %v\n", err)
		os.Exit(1)
	}

	for _, r := range results {
		if r.Err != nil {
			continue
		}
		c := r.Value
		rep := c.rep
		counts := rep.CountByReaction()
		fmt.Printf("=== %s: %d misconfigurations injected ===\n", c.sys.Name(), len(c.ms))
		order := []inject.Reaction{
			inject.ReactionCrash, inject.ReactionEarlyTerm, inject.ReactionFuncFailure,
			inject.ReactionSilentViolation, inject.ReactionSilentIgnorance,
			inject.ReactionGood, inject.ReactionTolerated,
		}
		for _, rr := range order {
			marker := " "
			if rr.Vulnerability() {
				marker = "!"
			}
			fmt.Printf("  %s %-20s %d\n", marker, rr.String(), counts[rr])
		}
		if errs := rep.Errors(); len(errs) > 0 {
			fmt.Printf("  ! %-20s %d (harness failures, excluded from tallies)\n", "untestable", len(errs))
		}
		if rep.Skipped > 0 {
			fmt.Printf("    %-20s %d (cancelled before start, excluded from tallies)\n", "skipped", rep.Skipped)
		}
		fmt.Printf("  vulnerabilities: %d at %d unique code locations; simulated cost %d units\n",
			len(rep.Vulnerabilities()), rep.UniqueLocations(), rep.TotalSimCost)
		if store != nil {
			// Executed = outcomes that genuinely ran to completion this
			// run; errored and cancelled-in-flight rows re-execute next
			// run and are not counted.
			finished := 0
			for _, o := range rep.Outcomes {
				if o.Err == "" {
					finished++
				}
			}
			executed := finished - rep.Replayed
			if c.st.Fallback != "" {
				fmt.Printf("  state: full campaign — %s\n", c.st.Fallback)
			} else {
				fmt.Printf("  state: incremental, %d delta retests\n", c.st.Retests)
			}
			fmt.Printf("  state: replayed %d/%d, executed %d, fresh sim cost %d (saved %d)\n",
				rep.Replayed, len(c.ms), executed, rep.TotalSimCost, rep.ReplayedSimCost)
			if c.st.Saved {
				fmt.Printf("  state: snapshot saved to %s\n", c.st.Path)
			}
		}
		fmt.Println()

		if *reports {
			printed := 0
			for _, o := range rep.Vulnerabilities() {
				if printed >= *max {
					fmt.Printf("  ... (%d more vulnerabilities; raise -max)\n", len(rep.Vulnerabilities())-printed)
					break
				}
				fmt.Println(inject.ErrorReport(o))
				printed++
			}
		}
	}
	if cancelErr != nil {
		os.Exit(130)
	}
}
