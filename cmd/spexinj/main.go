// Command spexinj runs the misconfiguration-injection campaign against a
// simulated target system (paper §3.1): it generates errors violating every
// inferred constraint, boots the target per misconfiguration, runs the
// target's own test suite, classifies reactions, and prints error reports
// for the exposed vulnerabilities.
//
// Campaigns run on the global cross-target scheduler (internal/shard):
// with -all the seven targets' misconfigurations flatten into one task
// queue feeding a single -workers wide pool, interleaved round-robin
// across targets so no target's serialized boot phase starves the pool
// and small targets draining early do not idle workers. A single
// -system campaign is the one-workload special case of the same
// scheduler. Ctrl-C cancels the campaign; outcomes already measured are
// reported and misconfigurations never started are counted as skipped
// (they do not inflate the progress stream).
//
// # Persistent incremental campaigns
//
// With -state <dir> the campaign is incremental across process runs,
// making the paper's "the campaign is a one-time cost" claim hold end to
// end. Each run loads the system's snapshot from the state directory,
// Diffs the freshly inferred constraint set against the snapshot's
// stored set, re-executes only the delta-selected misconfigurations
// (replaying everything else at zero simulated cost), and atomically
// saves the updated snapshot. A snapshot is a versioned JSON document
// (internal/campaignstore); missing, corrupt, or schema-stale snapshots
// never replay — the run falls back to a full campaign and rebuilds the
// snapshot. A cancelled run saves its finished outcomes, so the next run
// resumes with exactly the unfinished misconfigurations. The state
// directory is guarded by an exclusive writer lock (a second concurrent
// run fails fast instead of silently racing snapshot saves; stale locks
// from crashed runs are taken over automatically).
//
// # Distributed campaign sharding
//
// With -shard i/N the process executes only its deterministic 1/N
// partition of the workload (stable hash of each misconfiguration's
// replay identity — every shard computes the same partition from the
// same inference, no coordinator needed) and saves its outcomes as
// per-shard snapshots under -state, which -shard therefore requires.
// Shards run as separate processes or machines; spexmerge folds their
// state directories into one canonical store whose replayed report is
// identical to an unsharded run's.
//
// # Coordinated campaigns with work stealing
//
// With -coordinate N the process becomes a shard coordinator
// (internal/coord): it launches N local child spexinj workers, assigns
// each the same i/N hash partition a static -shard run would compute
// (persisted as lease files under <state>/coord/), watches per-worker
// heartbeat files, and rebalances by stealing — when a worker drains
// while another still has more than -steal-min pending
// misconfigurations, a deterministic suffix of the laggard's remaining
// lease moves to the idle worker, which is relaunched on it. The
// laggard observes its shrunken lease between outcomes and yields the
// stolen keys instead of executing them, so the slowest shard no
// longer sets the campaign's wall clock. When every worker drains, the
// coordinator merges the per-worker stores (<state>/shard<i>/) into
// the canonical store at the state root and prints the merge stats —
// the fingerprint matches an unsharded run's byte for byte. An
// interrupted coordinator resumes: leases and shard snapshots survive,
// and the rerun re-executes only what was never persisted.
//
// Worker processes are spexinj itself in lease mode (-lease <file>,
// normally set by the coordinator): they execute exactly their lease's
// keys, heartbeat progress, and watch for steals. A worker process
// that dies on an error (a crashed child, a lost connection) is
// respawned on its unchanged lease up to -worker-retries times
// (default 1) before the campaign aborts; the respawned worker replays
// its persisted outcomes and re-executes only what never saved.
//
// # Spawning workers over SSH
//
// -spawn replaces the default self-exec worker template with an
// arbitrary command line (whitespace-split; {lease}, {state} and
// {worker} expand per worker — coord.ExpandArgv). The SSH preset runs
// each worker on its own machine; the only infrastructure it needs is
// the state directory on a shared filesystem:
//
//	spexinj -all -coordinate 4 -state /mnt/spex \
//	  -spawn "ssh worker{worker}.cluster.example spexinj -lease {lease} -state {state} -all"
//
// which launches worker 2 as
//
//	ssh worker2.cluster.example spexinj \
//	  -lease /mnt/spex/coord/worker2.lease.json -state /mnt/spex/shard2 -all
//
// (No coordinator flags are forwarded through a custom template —
// -no-optimizations, -sim-delay, -skew, -workers all have to be spelled
// in the template itself. Outcome-affecting ones matter most: a worker
// whose options differ from the coordinator's saves snapshots under a
// different options identity, and the final merge rejects the shards as
// mixed rather than silently blending them. No SSH runs in CI — the
// template expansion is unit-tested, the protocol is exercised by the
// local exec spawner.)
//
// # Progress rendering
//
// -progress consumes the campaign's progress stream off a fan-out hub
// (internal/shard Hub — the same pipeline the spexd daemon serves over
// SSE) and renders it with internal/progressui: on a terminal, one
// live bar per system plus an aggregate header, rewritten in place;
// in CI logs and redirects, the established throttled one-line
// aggregate.
//
// Usage:
//
//	spexinj -system proxyd [-reports] [-max 5] [-workers 8]
//	spexinj -system proxyd -state /var/lib/spex   # incremental across runs
//	spexinj -all                                  # one global pool, all targets
//	spexinj -all -shard 1/4 -state /tmp/shard1    # one shard of a 4-way split
//	spexinj -all -coordinate 4 -state /var/lib/spex  # 4 workers + work stealing
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"spex/internal/campaignstore"
	"spex/internal/coord"
	"spex/internal/inject"
	"spex/internal/obs"
	"spex/internal/progressui"
	"spex/internal/shard"
	"spex/internal/sim"
	"spex/internal/spex"
	"spex/internal/targets"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		system     = flag.String("system", "", "target system (see spex -list)")
		all        = flag.Bool("all", false, "run the campaign on every target through one global pool")
		reports    = flag.Bool("reports", false, "print full error reports for vulnerabilities")
		max        = flag.Int("max", 10, "maximum error reports to print")
		noOpt      = flag.Bool("no-optimizations", false, "disable shortest-test-first and stop-on-first-failure")
		workers    = flag.Int("workers", 0, "width of the global worker pool (0 = one per CPU)")
		progress   = flag.Bool("progress", false, "stream one aggregate progress line (plus per-system counts) to stderr")
		state      = flag.String("state", "", "state directory for persistent incremental campaigns: replay saved outcomes, retest only the constraint delta, save the updated snapshot")
		shardFlag  = flag.String("shard", "", "execute one shard i/N of the workload (requires -state; merge shard directories with spexmerge)")
		coordinate = flag.Int("coordinate", 0, "coordinate N local shard workers with work-stealing rebalance (requires -state; merges into it when done)")
		stealMin   = flag.Int("steal-min", coord.DefaultStealMin, "coordinator: steal only from a laggard with more than this many pending misconfigurations")
		retries    = flag.Int("worker-retries", coord.DefaultWorkerRetries, "coordinator: respawn a worker that dies on an error this many times before aborting")
		spawnTmpl  = flag.String("spawn", "", "coordinator: worker command template ({lease}/{state}/{worker} placeholders; e.g. an ssh preset — see the doc comment); default re-executes spexinj locally")
		leaseFlag  = flag.String("lease", "", "worker mode: execute the key set leased in this file (requires -state; normally set by -coordinate)")
		simDelay   = flag.Duration("sim-delay", 0, "realize each simulated cost unit as this much wall time (scheduling knob for demos and skew experiments; 0 = full speed)")
		skew       = flag.Int("skew", 1, "coordinator: multiply -sim-delay by this factor for worker 1, modeling a slow machine (demo/CI knob)")
		metricsOut = flag.String("metrics-out", "", "on exit, dump the process metrics registry as JSON to this file (engine, store, scheduler, and coordinator series)")
	)
	flag.Parse()
	defer func() {
		if *metricsOut == "" {
			return
		}
		if err := obs.Default().WriteJSONFile(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "spexinj: metrics-out: %v\n", err)
		}
	}()

	var systems []sim.System
	if *all {
		systems = targets.All()
	} else if sys := targets.ByName(*system); sys != nil {
		systems = []sim.System{sys}
	} else {
		fmt.Fprintf(os.Stderr, "spexinj: unknown system %q\n", *system)
		return 2
	}

	opts := inject.DefaultOptions()
	if *noOpt {
		opts.StopOnFirstFailure = false
		opts.SortTests = false
	}
	opts.SimCostDelay = *simDelay

	modes := 0
	for _, on := range []bool{*shardFlag != "", *coordinate != 0, *leaseFlag != ""} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "spexinj: -shard, -coordinate and -lease are mutually exclusive")
		return 2
	}
	if (*shardFlag != "" || *coordinate != 0 || *leaseFlag != "") && *state == "" {
		fmt.Fprintln(os.Stderr, "spexinj: -shard, -coordinate and -lease require -state (the campaign's snapshots live there)")
		return 2
	}

	var plan shard.Plan
	if *shardFlag != "" {
		var err error
		plan, err = shard.ParsePlan(*shardFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spexinj: %v\n", err)
			return 2
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *coordinate != 0 {
		if *coordinate < 2 {
			fmt.Fprintln(os.Stderr, "spexinj: -coordinate needs at least 2 workers (a single shard has nobody to steal from)")
			return 2
		}
		if *progress {
			fmt.Fprintln(os.Stderr, "spexinj: -progress is ignored under -coordinate (lifecycle events stream to stderr; per-worker output is in <state>/coord/worker<i>.log)")
		}
		return runCoordinator(ctx, systems, opts, coordArgs{
			state: *state, workers: *coordinate, pool: *workers,
			stealMin: *stealMin, retries: *retries, spawn: *spawnTmpl,
			all: *all, system: *system,
			noOpt: *noOpt, simDelay: *simDelay, skew: *skew,
			reports: *reports, max: *max,
		})
	}
	if *leaseFlag != "" {
		return runWorker(ctx, *leaseFlag, *state, systems, opts, *workers)
	}

	var lock *campaignstore.Lock
	var locks *campaignstore.LockSet
	if *state != "" {
		store, err := campaignstore.Open(*state)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spexinj: %v\n", err)
			return 1
		}
		// One writer per state directory: a concurrent run fails fast
		// here instead of silently losing the race of snapshot saves.
		// The handle is the snapshot-write capability the scheduler
		// saves through.
		lock, err = store.Lock()
		if err != nil {
			fmt.Fprintf(os.Stderr, "spexinj: %v\n", err)
			return 1
		}
		defer func() {
			if uerr := lock.Unlock(); uerr != nil {
				fmt.Fprintf(os.Stderr, "spexinj: %v\n", uerr)
			}
		}()
		// The whole-directory lock viewed as the per-system capability
		// set the scheduler saves through.
		locks = lock.Set()
	}

	// Inference fans out on the engine pool, then every system's
	// misconfigurations (shard-filtered under a -shard plan) interleave
	// on one global pool.
	results, err := spex.InferAll(ctx, systems, *workers)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "spexinj: cancelled: %v\n", err)
			return 130
		}
		fmt.Fprintf(os.Stderr, "spexinj: %v\n", err)
		return 1
	}
	ws, totals, err := shard.BuildWorkloads(systems, results, plan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spexinj: %v\n", err)
		return 1
	}

	gopts := shard.Options{Workers: *workers, Inject: opts}
	var finishProgress func()
	if *progress {
		gopts.OnProgress, finishProgress = progressui.Attach(os.Stderr, "spexinj")
	}
	runs, runErr := shard.CampaignAll(ctx, locks, ws, gopts)
	if finishProgress != nil {
		finishProgress()
	}
	cancelled := runErr != nil && errors.Is(runErr, context.Canceled)
	if runErr != nil && !cancelled {
		fmt.Fprintf(os.Stderr, "spexinj: %v\n", runErr)
	}
	if cancelled {
		fmt.Fprintf(os.Stderr, "spexinj: cancelled: %v\n", runErr)
	}

	for i, run := range runs {
		rep := run.Report
		if run.Err != nil {
			// Non-fatal store failure: the campaign data is intact.
			fmt.Fprintf(os.Stderr, "spexinj: %s: %v\n", run.Sys.Name(), run.Err)
		}
		counts := rep.CountByReaction()
		if plan.Enabled() {
			fmt.Printf("=== %s: %d misconfigurations injected (shard %s of %d) ===\n",
				run.Sys.Name(), len(ws[i].Ms), plan, totals[i])
		} else {
			fmt.Printf("=== %s: %d misconfigurations injected ===\n", run.Sys.Name(), len(ws[i].Ms))
		}
		order := []inject.Reaction{
			inject.ReactionCrash, inject.ReactionEarlyTerm, inject.ReactionFuncFailure,
			inject.ReactionSilentViolation, inject.ReactionSilentIgnorance,
			inject.ReactionGood, inject.ReactionTolerated,
		}
		for _, rr := range order {
			marker := " "
			if rr.Vulnerability() {
				marker = "!"
			}
			fmt.Printf("  %s %-20s %d\n", marker, rr.String(), counts[rr])
		}
		if errs := rep.Errors(); len(errs) > 0 {
			fmt.Printf("  ! %-20s %d (harness failures, excluded from tallies)\n", "untestable", len(errs))
		}
		if rep.Skipped > 0 {
			fmt.Printf("    %-20s %d (cancelled before start, excluded from tallies)\n", "skipped", rep.Skipped)
		}
		fmt.Printf("  vulnerabilities: %d at %d unique code locations; simulated cost %d units\n",
			len(rep.Vulnerabilities()), rep.UniqueLocations(), rep.TotalSimCost)
		if lock != nil {
			// Executed = outcomes that genuinely ran to completion this
			// run; errored and cancelled-in-flight rows re-execute next
			// run and are not counted.
			executed := rep.Finished() - rep.Replayed
			if run.Status.Fallback != "" {
				fmt.Printf("  state: full campaign — %s\n", run.Status.Fallback)
			} else {
				fmt.Printf("  state: incremental, %d delta retests\n", run.Status.Retests)
			}
			fmt.Printf("  state: replayed %d/%d, executed %d, fresh sim cost %d (saved %d)\n",
				rep.Replayed, len(ws[i].Ms), executed, rep.TotalSimCost, rep.ReplayedSimCost)
			if run.Status.Saved {
				fmt.Printf("  state: snapshot saved to %s\n", run.Status.Path)
			}
		}
		fmt.Println()

		if *reports {
			printed := 0
			for _, o := range rep.Vulnerabilities() {
				if printed >= *max {
					fmt.Printf("  ... (%d more vulnerabilities; raise -max)\n", len(rep.Vulnerabilities())-printed)
					break
				}
				fmt.Println(inject.ErrorReport(o))
				printed++
			}
		}
	}
	if cancelled {
		return 130
	}
	return 0
}

// coordArgs carries the CLI knobs the coordinator mode needs.
type coordArgs struct {
	state    string
	workers  int
	pool     int
	stealMin int
	retries  int
	spawn    string
	all      bool
	system   string
	noOpt    bool
	simDelay time.Duration
	skew     int
	reports  bool
	max      int
}

// runCoordinator is `spexinj -coordinate N`: launch N child spexinj
// workers in lease mode over the shared state directory, rebalance by
// stealing, merge, and print the canonical store's per-system stats.
func runCoordinator(ctx context.Context, systems []sim.System, opts inject.Options, a coordArgs) int {
	clog := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("component", "coordinator")
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "spexinj: %v\n", err)
		return 1
	}
	argvFor := func(worker int) []string {
		argv := []string{exe, "-lease", "{lease}", "-state", "{state}", "-workers", fmt.Sprint(a.pool)}
		if a.all {
			argv = append(argv, "-all")
		} else {
			argv = append(argv, "-system", a.system)
		}
		if a.noOpt {
			argv = append(argv, "-no-optimizations")
		}
		if a.simDelay > 0 {
			delay := a.simDelay
			if worker == 1 && a.skew > 1 {
				delay *= time.Duration(a.skew) // the induced slow machine
			}
			argv = append(argv, "-sim-delay", delay.String())
		}
		return argv
	}
	tmpl := strings.Fields(a.spawn) // empty without -spawn
	cfg := coord.Config{
		StateDir:      a.state,
		Workers:       a.workers,
		Systems:       systems,
		Inject:        opts,
		PoolWorkers:   a.pool,
		StealMin:      a.stealMin,
		WorkerRetries: a.retries,
		Spawn: func(ctx context.Context, spec coord.WorkerSpec) (coord.Handle, error) {
			if len(tmpl) > 0 {
				return coord.ExecSpawner(tmpl)(ctx, spec)
			}
			return coord.ExecSpawner(argvFor(spec.Worker))(ctx, spec)
		},
		OnEvent: func(e coord.Event) {
			// Structured lifecycle log on stderr; the stdout report stays
			// plain text. Each message keeps its key verb ("stole",
			// "launched", ...) so log greps keep working across the
			// slog migration.
			switch e.Kind {
			case "plan":
				clog.Info(fmt.Sprintf("planned %d misconfigurations across %d workers", e.Keys, a.workers),
					"keys", e.Keys, "workers", a.workers)
			case "resume":
				clog.Info(fmt.Sprintf("resuming %d misconfigurations from persisted leases", e.Keys),
					"keys", e.Keys)
			case "spawn":
				clog.Info(fmt.Sprintf("worker %d launched on %d keys", e.Worker, e.Keys),
					"worker", e.Worker, "keys", e.Keys)
			case "exit":
				if e.Err != nil {
					clog.Warn(fmt.Sprintf("worker %d exited: %v", e.Worker, e.Err),
						"worker", e.Worker, "err", e.Err)
				} else {
					clog.Info(fmt.Sprintf("worker %d drained", e.Worker), "worker", e.Worker)
				}
			case "retry":
				clog.Warn(fmt.Sprintf("respawning worker %d after failure (attempt %d): %v", e.Worker, e.Attempt, e.Err),
					"worker", e.Worker, "attempt", e.Attempt, "err", e.Err)
			case "steal":
				clog.Info(fmt.Sprintf("worker %d stole %d keys from laggard worker %d", e.Worker, e.Keys, e.From),
					"worker", e.Worker, "from", e.From, "keys", e.Keys)
			case "merge":
				clog.Info(fmt.Sprintf("merged %d outcomes into %s", e.Keys, a.state),
					"keys", e.Keys, "state", a.state)
			}
		},
	}
	res, err := coord.Run(ctx, cfg)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "spexinj: coordinator cancelled (leases and shard snapshots kept; rerun to resume): %v\n", err)
			return 130
		}
		fmt.Fprintf(os.Stderr, "spexinj: %v\n", err)
		return 1
	}
	fmt.Printf("=== coordinated campaign: %d workers, %d spawns, %d steals, %d retries ===\n",
		a.workers, res.Spawns, res.Steals, res.Retries)
	for _, st := range res.Stats {
		fmt.Printf("%-10s %d outcomes from %d shard(s)", st.System, st.Outcomes, st.Shards)
		if st.Duplicates > 0 {
			fmt.Printf(", %d duplicate keys resolved freshest-wins", st.Duplicates)
		}
		fmt.Printf(" -> %s\n", st.Path)
		fmt.Printf("%-10s store fingerprint %s\n", "", st.Fingerprint)
	}
	if a.reports {
		if err := printMergedReports(a.state, a.max); err != nil {
			fmt.Fprintf(os.Stderr, "spexinj: %v\n", err)
			return 1
		}
	}
	return 0
}

// printMergedReports renders vulnerability error reports from the
// coordinated campaign's merged store — the -reports flag's meaning
// under -coordinate, where no single process held the outcomes in
// memory. Like the plain driver, -max caps reports per system.
func printMergedReports(stateDir string, max int) error {
	store, err := campaignstore.Open(stateDir)
	if err != nil {
		return err
	}
	snaps, err := store.LoadAll()
	if err != nil {
		return err
	}
	for _, snap := range snaps {
		keys := make([]string, 0, len(snap.Outcomes))
		for k := range snap.Outcomes {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var vulns []inject.Outcome
		for _, k := range keys {
			o := snap.Outcomes[k]
			if o.Reaction.Vulnerability() && o.Err == "" {
				vulns = append(vulns, o)
			}
		}
		for i, o := range vulns {
			if i >= max {
				fmt.Printf("  ... (%d more vulnerabilities in %s; raise -max)\n", len(vulns)-i, snap.System)
				break
			}
			fmt.Println(inject.ErrorReport(o))
		}
	}
	return nil
}

// runWorker is `spexinj -lease <file>`: the coordinator's child
// process, executing exactly the leased key set against its private
// shard store and heartbeating progress.
func runWorker(ctx context.Context, leasePath, stateDir string, systems []sim.System, opts inject.Options, pool int) int {
	res, err := coord.RunWorker(ctx, leasePath, stateDir, systems, coord.WorkerOptions{
		Workers: pool, Inject: opts,
	})
	cancelled := err != nil && errors.Is(err, context.Canceled)
	if err != nil && !cancelled {
		fmt.Fprintf(os.Stderr, "spexinj: worker: %v\n", err)
		if res == nil {
			return 1
		}
	}
	saveFailed := false
	if res != nil {
		fmt.Printf("worker %d: lease generation %d, %d done, %d yielded to steals\n",
			res.Lease.Worker, res.Lease.Generation, res.Done, res.Yielded)
		for _, run := range res.Runs {
			if run.Err != nil {
				// In worker mode the snapshot IS the output: a save
				// failure means this partition's outcomes would vanish
				// from the coordinator's merge, so it is fatal here
				// even though the plain driver treats it as a warning.
				saveFailed = true
				fmt.Fprintf(os.Stderr, "spexinj: worker: %s: %v\n", run.Sys.Name(), run.Err)
			}
			rep := run.Report
			fmt.Printf("  %-10s replayed %d, executed %d, yielded %d, fresh sim cost %d\n",
				run.Sys.Name(), rep.Replayed, rep.Finished()-rep.Replayed, rep.Yielded, rep.TotalSimCost)
		}
	}
	if cancelled {
		fmt.Fprintf(os.Stderr, "spexinj: worker cancelled (finished outcomes saved): %v\n", err)
		return 130
	}
	if err != nil || saveFailed {
		return 1
	}
	return 0
}
