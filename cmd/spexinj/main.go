// Command spexinj runs the misconfiguration-injection campaign against a
// simulated target system (paper §3.1): it generates errors violating every
// inferred constraint, boots the target per misconfiguration, runs the
// target's own test suite, classifies reactions, and prints error reports
// for the exposed vulnerabilities.
//
// Campaigns run on the engine worker pool: misconfigurations of one system
// execute -workers wide, and with -all the seven targets fan out as well.
// Ctrl-C cancels the campaign; outcomes already measured are reported.
//
// Usage:
//
//	spexinj -system proxyd [-reports] [-max 5] [-workers 8]
//	spexinj -all
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/engine"
	"spex/internal/inject"
	"spex/internal/sim"
	"spex/internal/spex"
	"spex/internal/targets"
)

func main() {
	var (
		system   = flag.String("system", "", "target system (see spex -list)")
		all      = flag.Bool("all", false, "run the campaign on every target")
		reports  = flag.Bool("reports", false, "print full error reports for vulnerabilities")
		max      = flag.Int("max", 10, "maximum error reports to print")
		noOpt    = flag.Bool("no-optimizations", false, "disable shortest-test-first and stop-on-first-failure")
		workers  = flag.Int("workers", 0, "parallelism: campaigns with -all, misconfigurations for a single system (0 = one per CPU)")
		progress = flag.Bool("progress", false, "stream campaign progress to stderr")
	)
	flag.Parse()

	var systems []sim.System
	if *all {
		systems = targets.All()
	} else if sys := targets.ByName(*system); sys != nil {
		systems = []sim.System{sys}
	} else {
		fmt.Fprintf(os.Stderr, "spexinj: unknown system %q\n", *system)
		os.Exit(2)
	}

	opts := inject.DefaultOptions()
	if *noOpt {
		opts.StopOnFirstFailure = false
		opts.SortTests = false
	}
	if *workers == 0 {
		*workers = engine.DefaultWorkers()
	}
	// One budget, spent where it helps: with -all the systems fan out
	// and each campaign stays sequential; for a single system the
	// campaign itself runs -workers wide.
	fanout := 1
	if len(systems) > 1 {
		fanout = *workers
	} else {
		opts.Workers = *workers
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	type campaign struct {
		sys sim.System
		ms  []confgen.Misconf
		rep *inject.Report
	}
	results, cancelErr := engine.Run(ctx, len(systems), func(ctx context.Context, i int) (campaign, error) {
		sys := systems[i]
		res, err := spex.InferSystem(sys)
		if err != nil {
			return campaign{}, err
		}
		tmpl, err := conffile.Parse(sys.DefaultConfig(), sys.Syntax())
		if err != nil {
			return campaign{}, err
		}
		ms := confgen.NewRegistry().Generate(res.Set, tmpl)
		sysOpts := opts
		if *progress {
			sysOpts.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "spexinj: %s %d/%d\r", sys.Name(), done, total)
			}
		}
		rep, err := inject.RunContext(ctx, sys, ms, sysOpts)
		if err != nil && rep == nil {
			return campaign{}, err
		}
		// On cancellation keep the partial report: outcomes already
		// measured are reported (unstarted rows carry the context error
		// and are excluded from the tallies).
		return campaign{sys: sys, ms: ms, rep: rep}, nil
	}, engine.Options[campaign]{Workers: fanout})
	if cancelErr != nil {
		fmt.Fprintf(os.Stderr, "spexinj: cancelled: %v\n", cancelErr)
	}
	if err := engine.FirstError(results); err != nil && cancelErr == nil {
		fmt.Fprintf(os.Stderr, "spexinj: %v\n", err)
		os.Exit(1)
	}

	for _, r := range results {
		if r.Err != nil {
			continue
		}
		c := r.Value
		rep := c.rep
		counts := rep.CountByReaction()
		fmt.Printf("=== %s: %d misconfigurations injected ===\n", c.sys.Name(), len(c.ms))
		order := []inject.Reaction{
			inject.ReactionCrash, inject.ReactionEarlyTerm, inject.ReactionFuncFailure,
			inject.ReactionSilentViolation, inject.ReactionSilentIgnorance,
			inject.ReactionGood, inject.ReactionTolerated,
		}
		for _, rr := range order {
			marker := " "
			if rr.Vulnerability() {
				marker = "!"
			}
			fmt.Printf("  %s %-20s %d\n", marker, rr.String(), counts[rr])
		}
		if errs := rep.Errors(); len(errs) > 0 {
			fmt.Printf("  ! %-20s %d (harness failures, excluded from tallies)\n", "untestable", len(errs))
		}
		fmt.Printf("  vulnerabilities: %d at %d unique code locations; simulated cost %d units\n\n",
			len(rep.Vulnerabilities()), rep.UniqueLocations(), rep.TotalSimCost)

		if *reports {
			printed := 0
			for _, o := range rep.Vulnerabilities() {
				if printed >= *max {
					fmt.Printf("  ... (%d more vulnerabilities; raise -max)\n", len(rep.Vulnerabilities())-printed)
					break
				}
				fmt.Println(inject.ErrorReport(o))
				printed++
			}
		}
	}
	if cancelErr != nil {
		os.Exit(130)
	}
}
