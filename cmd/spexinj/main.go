// Command spexinj runs the misconfiguration-injection campaign against a
// simulated target system (paper §3.1): it generates errors violating every
// inferred constraint, boots the target per misconfiguration, runs the
// target's own test suite, classifies reactions, and prints error reports
// for the exposed vulnerabilities.
//
// Campaigns run on the global cross-target scheduler (internal/shard):
// with -all the seven targets' misconfigurations flatten into one task
// queue feeding a single -workers wide pool, interleaved round-robin
// across targets so no target's serialized boot phase starves the pool
// and small targets draining early do not idle workers. A single
// -system campaign is the one-workload special case of the same
// scheduler. Ctrl-C cancels the campaign; outcomes already measured are
// reported and misconfigurations never started are counted as skipped
// (they do not inflate the progress stream).
//
// # Persistent incremental campaigns
//
// With -state <dir> the campaign is incremental across process runs,
// making the paper's "the campaign is a one-time cost" claim hold end to
// end. Each run loads the system's snapshot from the state directory,
// Diffs the freshly inferred constraint set against the snapshot's
// stored set, re-executes only the delta-selected misconfigurations
// (replaying everything else at zero simulated cost), and atomically
// saves the updated snapshot. A snapshot is a versioned JSON document
// (internal/campaignstore); missing, corrupt, or schema-stale snapshots
// never replay — the run falls back to a full campaign and rebuilds the
// snapshot. A cancelled run saves its finished outcomes, so the next run
// resumes with exactly the unfinished misconfigurations.
//
// # Distributed campaign sharding
//
// With -shard i/N the process executes only its deterministic 1/N
// partition of the workload (stable hash of each misconfiguration's
// replay identity — every shard computes the same partition from the
// same inference, no coordinator needed) and saves its outcomes as
// per-shard snapshots under -state, which -shard therefore requires.
// Shards run as separate processes or machines; spexmerge folds their
// state directories into one canonical store whose replayed report is
// identical to an unsharded run's.
//
// Usage:
//
//	spexinj -system proxyd [-reports] [-max 5] [-workers 8]
//	spexinj -system proxyd -state /var/lib/spex   # incremental across runs
//	spexinj -all                                  # one global pool, all targets
//	spexinj -all -shard 1/4 -state /tmp/shard1    # one shard of a 4-way split
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"spex/internal/campaignstore"
	"spex/internal/inject"
	"spex/internal/shard"
	"spex/internal/sim"
	"spex/internal/spex"
	"spex/internal/targets"
)

func main() {
	var (
		system    = flag.String("system", "", "target system (see spex -list)")
		all       = flag.Bool("all", false, "run the campaign on every target through one global pool")
		reports   = flag.Bool("reports", false, "print full error reports for vulnerabilities")
		max       = flag.Int("max", 10, "maximum error reports to print")
		noOpt     = flag.Bool("no-optimizations", false, "disable shortest-test-first and stop-on-first-failure")
		workers   = flag.Int("workers", 0, "width of the global worker pool (0 = one per CPU)")
		progress  = flag.Bool("progress", false, "stream one aggregate progress line (plus per-system counts) to stderr")
		state     = flag.String("state", "", "state directory for persistent incremental campaigns: replay saved outcomes, retest only the constraint delta, save the updated snapshot")
		shardFlag = flag.String("shard", "", "execute one shard i/N of the workload (requires -state; merge shard directories with spexmerge)")
	)
	flag.Parse()

	var systems []sim.System
	if *all {
		systems = targets.All()
	} else if sys := targets.ByName(*system); sys != nil {
		systems = []sim.System{sys}
	} else {
		fmt.Fprintf(os.Stderr, "spexinj: unknown system %q\n", *system)
		os.Exit(2)
	}

	opts := inject.DefaultOptions()
	if *noOpt {
		opts.StopOnFirstFailure = false
		opts.SortTests = false
	}

	var plan shard.Plan
	if *shardFlag != "" {
		var err error
		plan, err = shard.ParsePlan(*shardFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spexinj: %v\n", err)
			os.Exit(2)
		}
		if *state == "" {
			fmt.Fprintln(os.Stderr, "spexinj: -shard requires -state (the shard's outcomes are its snapshot directory)")
			os.Exit(2)
		}
	}

	var store *campaignstore.Store
	if *state != "" {
		var err error
		store, err = campaignstore.Open(*state)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spexinj: %v\n", err)
			os.Exit(1)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Inference fans out on the engine pool, then every system's
	// misconfigurations (shard-filtered under a -shard plan) interleave
	// on one global pool.
	results, err := spex.InferAll(ctx, systems, *workers)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "spexinj: cancelled: %v\n", err)
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "spexinj: %v\n", err)
		os.Exit(1)
	}
	ws, totals, err := shard.BuildWorkloads(systems, results, plan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spexinj: %v\n", err)
		os.Exit(1)
	}

	gopts := shard.Options{Workers: *workers, Inject: opts}
	if *progress {
		gopts.OnProgress = progressLine(ws)
	}
	runs, runErr := shard.CampaignAll(ctx, store, ws, gopts)
	if *progress {
		fmt.Fprintln(os.Stderr) // terminate the \r progress line
	}
	cancelled := runErr != nil && errors.Is(runErr, context.Canceled)
	if runErr != nil && !cancelled {
		fmt.Fprintf(os.Stderr, "spexinj: %v\n", runErr)
	}
	if cancelled {
		fmt.Fprintf(os.Stderr, "spexinj: cancelled: %v\n", runErr)
	}

	for i, run := range runs {
		rep := run.Report
		if run.Err != nil {
			// Non-fatal store failure: the campaign data is intact.
			fmt.Fprintf(os.Stderr, "spexinj: %s: %v\n", run.Sys.Name(), run.Err)
		}
		counts := rep.CountByReaction()
		if plan.Enabled() {
			fmt.Printf("=== %s: %d misconfigurations injected (shard %s of %d) ===\n",
				run.Sys.Name(), len(ws[i].Ms), plan, totals[i])
		} else {
			fmt.Printf("=== %s: %d misconfigurations injected ===\n", run.Sys.Name(), len(ws[i].Ms))
		}
		order := []inject.Reaction{
			inject.ReactionCrash, inject.ReactionEarlyTerm, inject.ReactionFuncFailure,
			inject.ReactionSilentViolation, inject.ReactionSilentIgnorance,
			inject.ReactionGood, inject.ReactionTolerated,
		}
		for _, rr := range order {
			marker := " "
			if rr.Vulnerability() {
				marker = "!"
			}
			fmt.Printf("  %s %-20s %d\n", marker, rr.String(), counts[rr])
		}
		if errs := rep.Errors(); len(errs) > 0 {
			fmt.Printf("  ! %-20s %d (harness failures, excluded from tallies)\n", "untestable", len(errs))
		}
		if rep.Skipped > 0 {
			fmt.Printf("    %-20s %d (cancelled before start, excluded from tallies)\n", "skipped", rep.Skipped)
		}
		fmt.Printf("  vulnerabilities: %d at %d unique code locations; simulated cost %d units\n",
			len(rep.Vulnerabilities()), rep.UniqueLocations(), rep.TotalSimCost)
		if store != nil {
			// Executed = outcomes that genuinely ran to completion this
			// run; errored and cancelled-in-flight rows re-execute next
			// run and are not counted.
			finished := 0
			for _, o := range rep.Outcomes {
				if o.Err == "" {
					finished++
				}
			}
			executed := finished - rep.Replayed
			if run.Status.Fallback != "" {
				fmt.Printf("  state: full campaign — %s\n", run.Status.Fallback)
			} else {
				fmt.Printf("  state: incremental, %d delta retests\n", run.Status.Retests)
			}
			fmt.Printf("  state: replayed %d/%d, executed %d, fresh sim cost %d (saved %d)\n",
				rep.Replayed, len(ws[i].Ms), executed, rep.TotalSimCost, rep.ReplayedSimCost)
			if run.Status.Saved {
				fmt.Printf("  state: snapshot saved to %s\n", run.Status.Path)
			}
		}
		fmt.Println()

		if *reports {
			printed := 0
			for _, o := range rep.Vulnerabilities() {
				if printed >= *max {
					fmt.Printf("  ... (%d more vulnerabilities; raise -max)\n", len(rep.Vulnerabilities())-printed)
					break
				}
				fmt.Println(inject.ErrorReport(o))
				printed++
			}
		}
	}
	if cancelled {
		os.Exit(130)
	}
}

// progressLine returns a shard.Progress sink that rewrites one stderr
// status line per event: the aggregate done/total followed by every
// system's own count, in campaign order. One \r-terminated line instead
// of interleaved per-campaign lines, so concurrent campaigns cannot
// overwrite each other's progress.
func progressLine(ws []shard.Workload) func(shard.Progress) {
	idx := make(map[string]int, len(ws))
	done := make([]int, len(ws))
	for i, w := range ws {
		idx[w.Sys.Name()] = i
	}
	return func(p shard.Progress) {
		done[idx[p.System]] = p.SystemDone
		var b strings.Builder
		fmt.Fprintf(&b, "spexinj: %d/%d", p.Done, p.Total)
		sep := " ("
		for j, w := range ws {
			fmt.Fprintf(&b, "%s%s %d/%d", sep, w.Sys.Name(), done[j], len(w.Ms))
			sep = ", "
		}
		b.WriteString(")\r")
		fmt.Fprint(os.Stderr, b.String())
	}
}
